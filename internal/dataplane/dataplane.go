// Package dataplane assembles the hypervisor switch the paper attacks: the
// slow-path classifier (package classifier) behind a composable hierarchy
// of fast-path cache tiers (package cache), with upcall handling,
// revalidation and counters — a functional model of the Open vSwitch
// datapath pipeline:
//
//	packet -> tier 0 (EMC) -> tier 1 (SMC, optional) -> tier N (megaflow TSS) -> upcall
//	                                                                                |
//	                            every tier  <---  install + promote  <-------------+
//
// The hierarchy is assembled with functional options (WithEMC, WithSMC,
// WithMegaflow, ...) or fully custom via WithTiers; the switch walks
// whatever tiers it was given, so real OVS variants — the 2.6 default
// (EMC+TSS), the 2.10 signature-match cache, EMC-off kernel deployments —
// and per-tier mitigations are all constructions, not forks.
//
// The switch is driven by a logical clock supplied by the caller (the
// simulator or the benchmarks), keeping every experiment deterministic.
package dataplane

import (
	"fmt"
	"math/bits"
	"strings"

	"policyinject/internal/burst"
	"policyinject/internal/cache"
	"policyinject/internal/classifier"
	"policyinject/internal/conntrack"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
	"policyinject/internal/telemetry"
)

// Path identifies which layer decided a packet's fate.
type Path uint8

const (
	PathEMC Path = iota
	PathSMC
	PathMegaflow
	PathSlow
)

func (p Path) String() string {
	switch p {
	case PathEMC:
		return "emc"
	case PathSMC:
		return "smc"
	case PathMegaflow:
		return "megaflow"
	default:
		return "slowpath"
	}
}

// config collects what the options assemble. It is internal: switches are
// built with New(name, opts...).
type config struct {
	emc        *cache.EMCConfig
	smc        *cache.SMCConfig
	megaflow   cache.MegaflowConfig
	classifier classifier.Config
	maxIdle    uint64
	conntrack  *conntrack.Config
	tiers      []Tier // custom hierarchy (tiersSet): other cache opts ignored
	tiersSet   bool
	shards     int // WithShards: shard the default hierarchy's caches
	shardsSet  bool
	noCoalesce bool
	staged     bool
	upGuard    UpcallGuard
	maskGuard  MaskGuard
	tierWrap   func(Tier) Tier
	telemetry  *telemetry.Registry
}

// UpcallGuard is the upcall admission hook: consulted once per slow-path
// miss with the logical clock and the ingress port, a false return drops
// the packet at the datapath — no classification, no install
// (guard.Admission implements it).
type UpcallGuard interface {
	AdmitUpcall(now uint64, inPort uint32) bool
}

// MaskGuard observes and vetoes megaflow mask minting — the
// cache.MaskHooks trio as one interface, so per-tenant mask quota
// ledgers (guard.MaskLedger) attach through one option.
type MaskGuard interface {
	AdmitMask(flow.Match) error
	MaskMinted(flow.Match)
	MaskDropped(flow.Mask)
}

// Option configures a Switch under construction.
type Option func(*config)

// WithEMC sets the exact-match (microflow) cache configuration. The EMC is
// on by default; pass a negative Entries (or use WithoutEMC) to disable.
func WithEMC(cfg cache.EMCConfig) Option { return func(c *config) { c.emc = &cfg } }

// WithoutEMC removes the exact-match cache — the OVS *kernel* datapath
// model the paper's Kubernetes demo exercises.
func WithoutEMC() Option {
	return WithEMC(cache.EMCConfig{Entries: -1})
}

// WithSMC inserts OVS 2.10's signature-match cache between the EMC and the
// megaflow TSS (off by default, as in OVS).
func WithSMC(cfg cache.SMCConfig) Option { return func(c *config) { c.smc = &cfg } }

// WithMegaflow sets the megaflow TSS configuration (flow limits, mask
// quotas, sorted-TSS mitigation).
func WithMegaflow(cfg cache.MegaflowConfig) Option { return func(c *config) { c.megaflow = cfg } }

// WithStagedPruning enables staged subtable lookups with signature and
// L4-ports pruning plus EWMA scan ranking in the default megaflow tier
// (cache.MegaflowConfig.StagedPruning) — the OVS countermeasure that
// rejects most subtables without a full hash probe, bending the paper's
// attack curve. Composes with WithMegaflow in any order.
func WithStagedPruning() Option { return func(c *config) { c.staged = true } }

// WithClassifier sets the slow-path classifier configuration.
func WithClassifier(cfg classifier.Config) Option { return func(c *config) { c.classifier = cfg } }

// WithMaxIdle sets the revalidator idle timeout in logical time units
// (default 10, the OVS max-idle of 10s at one unit per second).
func WithMaxIdle(units uint64) Option { return func(c *config) { c.maxIdle = units } }

// WithConntrack attaches a connection tracker so stateful ACLs
// (Recirc/Commit actions) work. Stateless rule sets are unaffected.
func WithConntrack(cfg conntrack.Config) Option { return func(c *config) { c.conntrack = &cfg } }

// WithUpcallGuard gates every slow-path upcall behind an admission
// check. Refused upcalls count in Counters.UpcallDrops and resolve to
// Deny without visiting the classifier.
func WithUpcallGuard(g UpcallGuard) Option { return func(c *config) { c.upGuard = g } }

// WithMaskGuard wires a mask-lifecycle guard (per-tenant quotas with
// attribution) into the hierarchy's megaflow cache.
func WithMaskGuard(g MaskGuard) Option { return func(c *config) { c.maskGuard = g } }

// WithTierWrapper interposes wrap on every tier of the assembled
// hierarchy before capability discovery — the fault-injection seam
// (internal/chaos wraps the megaflow tier through it).
func WithTierWrapper(wrap func(Tier) Tier) Option { return func(c *config) { c.tierWrap = wrap } }

// WithoutRunCoalescing disables same-flow run coalescing in ProcessBatch:
// consecutive identical keys are then classified one by one. The batched
// tier walk itself stays on. Used by the A/B benchmarks and the
// coalescing-exactness property tests.
func WithoutRunCoalescing() Option { return func(c *config) { c.noCoalesce = true } }

// WithTiers replaces the default hierarchy with an explicit tier list,
// walked in order. The cache options (WithEMC/WithSMC/WithMegaflow) are
// ignored when this is used. Upcall results are installed into the last
// tier implementing MegaflowInstaller; without one the switch still
// classifies correctly but caches nothing.
func WithTiers(tiers ...Tier) Option {
	return func(c *config) { c.tiers, c.tiersSet = tiers, true }
}

// Decision is the outcome of processing one packet.
type Decision struct {
	Verdict      cache.Verdict
	Path         Path
	MasksScanned int // megaflow subtables visited, summed over recirculations
	Recirculated bool
}

// TierHit is one tier's hit count in a Counters snapshot, in tier walk
// order.
type TierHit struct {
	Tier string
	Hits uint64
}

// Counters aggregates switch-level statistics. Cache hits are per tier
// (TierHits, in walk order); the EMCHits/MFHits accessors cover the common
// hierarchies. The whole struct is owned by the single-threaded switch
// loop, so the discipline counteratomic holds every field to is "always
// plain" — never mix in atomic access.
//
//lint:atomiccounters
type Counters struct {
	Packets    uint64
	TierHits   []TierHit
	Upcalls    uint64
	Allowed    uint64
	Denied     uint64
	ParseError uint64
	InstallErr uint64 // upcalls whose megaflow could not be installed

	// UpcallDrops counts misses refused by the upcall admission guard:
	// never classified, resolved to Deny at the datapath. Always zero
	// without WithUpcallGuard.
	UpcallDrops uint64
}

// HitsFor returns the hit count of the named tier (0 when absent).
func (c Counters) HitsFor(tier string) uint64 {
	for _, th := range c.TierHits {
		if th.Tier == tier {
			return th.Hits
		}
	}
	return 0
}

// EMCHits returns the exact-match tier's hit count.
func (c Counters) EMCHits() uint64 { return c.HitsFor("emc") }

// SMCHits returns the signature-match tier's hit count.
func (c Counters) SMCHits() uint64 { return c.HitsFor("smc") }

// MFHits returns the megaflow tier's hit count.
func (c Counters) MFHits() uint64 { return c.HitsFor("megaflow") }

// Port is a virtual port of the switch (a pod/VM attachment point).
type Port struct {
	ID   uint32
	Name string

	RxPackets, RxBytes uint64
	RxErrors           uint64 // malformed frames received (also counted in RxDropped)
	RxDropped          uint64
	TxPackets, TxBytes uint64
}

// Switch is the hypervisor switch instance. Not safe for concurrent use;
// experiments drive it from one goroutine, as a single PMD thread would.
// For the multi-core view, see PMDPool.
type Switch struct {
	name    string
	maxIdle uint64
	table   flowtable.Table
	cls     *classifier.Classifier
	ports   map[uint32]*Port

	tiers      []Tier
	tierHits   []uint64
	hashedInst []HashedInstaller       // per-tier hashed-install capability (nil entries: plain Install)
	installer  MegaflowInstaller       // last installer tier, nil if none
	hashedMF   HashedMegaflowInstaller // installer's hash-aware capability, nil without
	promoteTo  int                     // tiers[:promoteTo] receive upcall promotions
	noCoalesce bool                    // disable same-flow run coalescing
	needHashes bool                    // some tier consumes burst flow hashes (HashUser/HashedInstaller)
	upGuard    UpcallGuard             // optional upcall admission guard

	ct *conntrack.Table

	tel *telemetryHooks // live-telemetry handles, nil without WithTelemetry

	counters Counters
	batch    batchScratch

	frameHash []uint64   // ProcessFrames' cached burst hashes
	oneFrame  FrameBatch // scalar Process's one-frame batch
	oneOut    []Decision
}

// batchScratch is the per-switch working set ProcessBatch reuses across
// bursts, so steady-state batch classification allocates nothing.
type batchScratch struct {
	hashes []uint64
	ents   []*cache.Entry
	costs  []int
	runs   []int // start index of each same-key run, ascending
	hits   []int // indices resolved by the current tier pass
	miss   burst.Bitmap
	prev   burst.Bitmap
}

func (bs *batchScratch) grow(n int) {
	if cap(bs.hashes) < n {
		bs.hashes = make([]uint64, n)
		bs.ents = make([]*cache.Entry, n)
		bs.costs = make([]int, n)
	}
	bs.hashes = bs.hashes[:n]
	bs.ents = bs.ents[:n]
	bs.costs = bs.costs[:n]
	bs.runs = bs.runs[:0]
}

// New builds a Switch with the given name and options. With no options the
// hierarchy is the stock OVS userspace datapath: default EMC in front of a
// default megaflow TSS.
func New(name string, opts ...Option) *Switch {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.maxIdle == 0 {
		cfg.maxIdle = 10
	}
	if cfg.staged {
		cfg.megaflow.StagedPruning = true
	}
	if cfg.shardsSet {
		validateSharded(&cfg)
	}
	tiers := cfg.tiers
	if !cfg.tiersSet {
		emcCfg := cache.EMCConfig{}
		if cfg.emc != nil {
			emcCfg = *cfg.emc
		}
		smcOn := cfg.smc != nil && cfg.smc.Entries >= 0
		if emcCfg.Entries >= 0 {
			// OVS couples smc-enable with probabilistic EMC insertion: the
			// SMC absorbs the flows the EMC no longer caches eagerly. Force
			// the stock emc-insert-inv-prob of 1/100 unless the caller set
			// an insertion policy explicitly; seed the PRNG from the switch
			// name so every experiment run draws the same sequence.
			if smcOn && emcCfg.InsertProb == 0 && emcCfg.InsertEvery == 0 {
				emcCfg.InsertProb = cache.DefaultEMCInsertProb
			}
			if emcCfg.Seed == 0 {
				emcCfg.Seed = nameSeed(name)
			}
			if cfg.shardsSet {
				tiers = append(tiers, NewShardedEMCTier(emcCfg, cfg.shards))
			} else {
				tiers = append(tiers, NewEMCTier(emcCfg))
			}
		}
		if smcOn {
			if cfg.shardsSet {
				tiers = append(tiers, NewShardedSMCTier(*cfg.smc, cfg.shards))
			} else {
				tiers = append(tiers, NewSMCTier(*cfg.smc))
			}
		}
		if cfg.shardsSet {
			tiers = append(tiers, NewShardedMegaflowTier(cfg.megaflow, cfg.shards))
		} else {
			tiers = append(tiers, NewMegaflowTier(cfg.megaflow))
		}
	}
	if cfg.tierWrap != nil {
		wrapped := make([]Tier, len(tiers))
		for i, t := range tiers {
			wrapped[i] = cfg.tierWrap(t)
		}
		tiers = wrapped
	}
	s := &Switch{
		name:       name,
		maxIdle:    cfg.maxIdle,
		cls:        classifier.New(cfg.classifier),
		ports:      make(map[uint32]*Port),
		tiers:      tiers,
		tierHits:   make([]uint64, len(tiers)),
		noCoalesce: cfg.noCoalesce,
		upGuard:    cfg.upGuard,
	}
	for i := len(tiers) - 1; i >= 0; i-- {
		if inst, ok := tiers[i].(MegaflowInstaller); ok {
			s.installer = inst
			s.promoteTo = i
			if hmf, ok := inst.(HashedMegaflowInstaller); ok {
				// Hash-aware installs (sharded tiers): the upcall path
				// carries the triggering key's flow hash so the megaflow
				// lands in the shard that key's lookups probe.
				s.hashedMF = hmf
				s.needHashes = true
			}
			break
		}
	}
	s.hashedInst = make([]HashedInstaller, len(tiers))
	for i, t := range tiers {
		if _, ok := t.(HashUser); ok {
			s.needHashes = true
		}
		if hi, ok := t.(HashedInstaller); ok {
			s.hashedInst[i] = hi
			s.needHashes = true
		}
	}
	if cfg.conntrack != nil {
		s.ct = conntrack.New(*cfg.conntrack)
	}
	if g := cfg.maskGuard; g != nil {
		if mf := s.Megaflow(); mf != nil {
			mf.SetMaskHooks(cache.MaskHooks{Admit: g.AdmitMask, Minted: g.MaskMinted, Dropped: g.MaskDropped})
		} else if smf := s.ShardedMegaflow(); smf != nil {
			// Sharded hierarchy: the guard sits behind the wrapper's
			// cross-shard ledger, which refcounts per-shard subtable
			// copies so the guard sees each logical mask once.
			smf.SetMaskHooks(cache.MaskHooks{Admit: g.AdmitMask, Minted: g.MaskMinted, Dropped: g.MaskDropped})
		}
	}
	if cfg.telemetry != nil {
		s.tel = newTelemetryHooks(cfg.telemetry, s)
	}
	return s
}

// nameSeed derives the per-switch PRNG seed for probabilistic EMC
// insertion: FNV-1a over the switch name, so a named switch draws the
// same reproducible sequence in every run while distinct PMDs
// ("<name>/pmd<i>") draw distinct ones.
func nameSeed(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h
}

// Name returns the configured switch name.
func (s *Switch) Name() string { return s.name }

// Tiers returns the cache hierarchy in walk order.
func (s *Switch) Tiers() []Tier { return s.tiers }

// AddPort creates a port with the given id, returning it. Adding an
// existing id returns the existing port.
func (s *Switch) AddPort(id uint32, name string) *Port {
	if p, ok := s.ports[id]; ok {
		return p
	}
	p := &Port{ID: id, Name: name}
	s.ports[id] = p
	return p
}

// Port returns the port with the given id, or nil.
func (s *Switch) Port(id uint32) *Port { return s.ports[id] }

// Ports returns all ports (unordered).
func (s *Switch) Ports() []*Port {
	out := make([]*Port, 0, len(s.ports))
	for _, p := range s.ports {
		out = append(out, p)
	}
	return out
}

// InstallRule adds a policy rule to the slow path. Installed caches are
// flushed: a policy change invalidates cached verdicts wholesale, the
// conservative variant of the OVS revalidator's consistency pass.
func (s *Switch) InstallRule(r flowtable.Rule) *flowtable.Rule {
	stored := s.table.Insert(r)
	s.cls.Insert(stored)
	s.flushCaches()
	return stored
}

// RemoveRule removes a rule previously installed.
func (s *Switch) RemoveRule(r *flowtable.Rule) bool {
	if !s.table.Remove(r) {
		return false
	}
	s.cls.Remove(r)
	s.flushCaches()
	return true
}

func (s *Switch) flushCaches() {
	for _, t := range s.tiers {
		t.Flush()
	}
}

// Rules returns the installed rules in evaluation order.
func (s *Switch) Rules() []*flowtable.Rule { return s.table.Rules() }

// Process runs one frame received on port inPort through the pipeline at
// logical time now. It is a legacy scalar shim kept for tests and
// single-packet probes: a one-frame batch through ProcessFrames, which
// is the one documented ingress of the switch. Production-shaped callers
// (cmd/, examples/, the simulator) assemble FrameBatch bursts and call
// ProcessFrames — the burst is the unit of the datapath, and the batched
// walk is where hash caching, run coalescing and the inverted subtable
// sweep live.
func (s *Switch) Process(now uint64, inPort uint32, frame []byte) (Decision, error) {
	fb := &s.oneFrame
	fb.Reset()
	fb.Append(frame, inPort)
	s.oneOut = s.ProcessFrames(now, fb, s.oneOut)
	return s.oneOut[0], fb.Err(0)
}

// ProcessKey classifies an already-extracted key — a legacy measurement
// hook for benchmarks and property tests that bypasses frame parsing.
// Like Process it is not an ingress: external callers drive the switch
// through ProcessFrames (or ProcessBatch when keys are pre-extracted in
// bulk). Packets hitting a conntrack dispatch rule are
// recirculated once: the connection tracker classifies the 5-tuple, the
// ct_state field is stamped into the key, and the pipeline runs again —
// both passes billed, as both cost the real switch.
func (s *Switch) ProcessKey(now uint64, k flow.Key) Decision {
	s.counters.Packets++
	return s.processOne(now, k)
}

// processOne is ProcessKey minus the packet counter, so batch callers can
// bill a whole burst with one add.
func (s *Switch) processOne(now uint64, k flow.Key) Decision {
	d, _, _ := s.processOneTracked(now, k)
	return d
}

// processOneTracked is processOne plus the hit provenance the run
// coalescer needs: the index of the tier that answered and the entry it
// returned. A slow-path or recirculated decision reports tier -1 (such
// decisions are never coalesced).
func (s *Switch) processOneTracked(now uint64, k flow.Key) (Decision, int, *cache.Entry) {
	d, ti, ent := s.classifyTracked(now, k)
	if !d.Verdict.Recirc {
		s.account(d.Verdict)
		return d, ti, ent
	}
	return s.finishRecirc(now, k, d), -1, nil
}

// finishRecirc completes a packet whose first pass hit a conntrack
// dispatch rule: the connection tracker classifies the 5-tuple, the
// ct_state field is stamped into the key, and the pipeline runs again —
// both passes billed, as both cost the real switch.
func (s *Switch) finishRecirc(now uint64, k flow.Key, d Decision) Decision {
	if s.ct == nil {
		// A stateful rule set on a switch without conntrack: fail closed.
		s.counters.Denied++
		d.Verdict = cache.Verdict{Verdict: flowtable.Deny}
		return d
	}
	tuple := k.Tuple()
	state, _ := s.ct.Lookup(tuple, now)
	k2 := k
	k2.Set(flow.FieldCTState, state.CTBits())
	d2 := s.classifyOnce(now, k2)
	d2.MasksScanned += d.MasksScanned
	d2.Recirculated = true
	if d2.Verdict.Recirc {
		// A second dispatch would loop; fail closed.
		d2.Verdict = cache.Verdict{Verdict: flowtable.Deny}
	}
	if d2.Verdict.Verdict == flowtable.Allow && d2.Verdict.Commit {
		if !s.ct.Commit(tuple, now) {
			// Table full: netfilter drops what it cannot track.
			d2.Verdict = cache.Verdict{Verdict: flowtable.Deny}
		}
	}
	s.account(d2.Verdict)
	return d2
}

// GrowDecisions returns out resized to n decisions, reallocating only
// when its capacity is insufficient — the shared output-buffer contract
// of every ProcessBatch implementation.
func GrowDecisions(out []Decision, n int) []Decision {
	if cap(out) < n {
		out = make([]Decision, n)
	}
	return out[:n]
}

// ProcessBatch classifies a batch of keys at logical time now, writing one
// Decision per key into out (grown if needed) and returning it. Batching
// is the first-class driving surface: the simulator and the PMD pool hand
// whole NIC bursts to the pipeline instead of one packet at a time.
//
// The burst is the unit of classification: flow hashes are computed once
// at batch entry, consecutive identical keys are coalesced into one lookup
// plus n accountings (same-flow runs, the shape heavy-tailed flow-size
// distributions produce), and the remaining distinct keys sweep the tier
// hierarchy one tier pass at a time over a miss bitmap — the megaflow pass
// visits each subtable once per burst instead of once per key. Within a
// burst, one key's cache promotions become visible to later *tier passes*
// of the same walk and to later packets of its own run — not to other
// keys already swept past that tier. In particular a key repeated in two
// non-consecutive runs of one burst is probed once per run in the same
// sweep, so the second run does not see the first's promotions and may
// answer from a lower tier than a sequential ProcessKey loop would (the
// verdict is identical either way). This is the visibility rule of OVS's
// dp_packet_batch processing; exact batch==sequential equivalence holds
// for bursts whose duplicate keys are consecutive.
func (s *Switch) ProcessBatch(now uint64, keys []flow.Key, out []Decision) []Decision {
	out = GrowDecisions(out, len(keys))
	s.counters.Packets += uint64(len(keys))
	s.processBatch(now, keys, nil, out)
	return out
}

// processBatch is ProcessBatch minus the packet counter and output
// growth. hashes, when non-nil, carries the burst's precomputed flow
// hashes (flow.HashKeys, index-aligned with keys); nil computes them here.
func (s *Switch) processBatch(now uint64, keys []flow.Key, hashes []uint64, out []Decision) {
	n := len(keys)
	switch n {
	case 0:
		return
	case 1:
		out[0] = s.processOne(now, keys[0])
		return
	}
	bs := &s.batch
	bs.grow(n)

	// Same-flow run detection: a run of consecutive identical keys (an
	// elephant-flow burst) enters the tier walk once, through its first
	// key; the copies are settled against the warm cache afterwards.
	bs.runs = append(bs.runs, 0)
	for i := 1; i < n; i++ {
		if keys[i] != keys[i-1] {
			bs.runs = append(bs.runs, i)
		}
	}

	if hashes == nil && s.needHashes {
		// Batch-entry hash pass: one Hash per run head, reused by every
		// hash-consuming tier instead of re-hashing per probe; a run's
		// copies take the head's hash by assignment (identical keys,
		// identical hashes — and hashing dominates copying 40:1 on the
		// elephant mix). Skipped when no tier declares HashUser.
		if cap(bs.hashes) < n {
			bs.hashes = make([]uint64, n)
		}
		bs.hashes = bs.hashes[:n]
		for ri, r := range bs.runs {
			end := n
			if ri+1 < len(bs.runs) {
				end = bs.runs[ri+1]
			}
			h := keys[r].Hash()
			for i := r; i < end; i++ {
				bs.hashes[i] = h
			}
		}
		hashes = bs.hashes
	}

	// Vectorized tier walk over the run representatives: each tier
	// resolves what it can for the whole burst before the walk descends.
	bs.miss.Reset(n)
	for _, r := range bs.runs {
		bs.miss.Set(r)
		bs.ents[r] = nil
		bs.costs[r] = 0
	}
	for ti, t := range s.tiers {
		if bs.miss.Empty() {
			break
		}
		bs.prev.CopyFrom(&bs.miss)
		var tierStart uint64
		if s.tel != nil {
			tierStart = telemetry.Clock()
		}
		if bt, ok := t.(BatchTier); ok {
			bt.LookupBatch(keys, hashes, now, bs.ents, bs.costs, &bs.miss)
		} else {
			// Scalar fallback: tiers without a batch path are probed key
			// by key, so WithTiers custom hierarchies keep working. The
			// word-at-a-time iteration (not ForEach) keeps the hot loop
			// closure-free.
			words := bs.prev.Words()
			for wi := range words {
				w := words[wi]
				for w != 0 {
					i := wi<<6 + bits.TrailingZeros64(w)
					w &= w - 1
					ent, cost, ok := t.Lookup(keys[i], now)
					bs.costs[i] += cost
					if ok {
						bs.ents[i] = ent
						bs.miss.Clear(i)
					}
				}
			}
		}
		if s.tel != nil {
			// Tier-pass latency: one observation per burst per tier, wall
			// time of the LookupBatch (or scalar-fallback) pass alone.
			s.tel.tierNs[ti].Record(telemetry.Clock() - tierStart)
		}
		// Bill and promote this pass's hits (prev &^ miss), exactly as the
		// scalar walk would: hit on tier ti installs into tiers [0, ti).
		// Promotion reuses the burst's cached hashes where a tier can take
		// them (the SMC batch insert path).
		bs.hits = bs.prev.AndNot(&bs.miss, bs.hits[:0])
		for _, i := range bs.hits {
			s.tierHits[ti]++
			s.promoteHashed(keys[i], hashAt(hashes, i), hashes != nil, bs.ents[i], ti)
			out[i] = Decision{Verdict: bs.ents[i].Verdict, Path: t.Path(), MasksScanned: bs.costs[i]}
		}
	}

	// Upcall tail, in input order. An upcall can install a megaflow that
	// covers later misses of the same burst, so once anything has been
	// installed the remaining misses re-probe the authoritative tier
	// before their own upcall — the post-upcall re-lookup real datapaths
	// do to avoid duplicate installs.
	if !bs.miss.Empty() {
		installs := 0
		words := bs.miss.Words()
		for wi := range words {
			w := words[wi]
			for w != 0 {
				i := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				out[i] = s.upcallOne(now, keys[i], hashAt(hashes, i), hashes != nil, bs.costs[i], &installs)
			}
		}
	}

	// Verdict accounting and conntrack recirculation for the
	// representatives, in input order.
	for _, r := range bs.runs {
		if out[r].Verdict.Recirc {
			out[r] = s.finishRecirc(now, keys[r], out[r])
		} else {
			s.account(out[r].Verdict)
		}
	}

	// Settle the runs: every non-representative copy classifies against
	// the cache its run's first key just warmed.
	for ri, start := range bs.runs {
		end := n
		if ri+1 < len(bs.runs) {
			end = bs.runs[ri+1]
		}
		if end-start > 1 {
			s.processRun(now, keys[start], out, start+1, end)
		}
	}
}

// processRun classifies copies [from, to) of one key whose first copy the
// batch walk already settled. The first copy here takes a real scalar
// walk (it sees the promotions its predecessor installed); if it lands
// stably in the top tier and the tier can coalesce, the remaining copies
// collapse into one AccountRun — one lookup plus n accountings for the
// whole elephant burst. Anything unstable (slow path, recirculation,
// probabilistic-insertion hierarchies still warming) falls back to exact
// per-copy processing.
func (s *Switch) processRun(now uint64, k flow.Key, out []Decision, from, to int) {
	d, tierIdx, ent := s.processOneTracked(now, k)
	out[from] = d
	rest := to - from - 1
	if rest == 0 {
		return
	}
	if !s.noCoalesce && tierIdx == 0 && !d.Recirculated {
		if rc, ok := s.tiers[0].(RunCoalescer); ok && rc.AccountRun(ent, rest, d.MasksScanned, now) {
			s.tierHits[0] += uint64(rest)
			if d.Verdict.Verdict == flowtable.Allow {
				s.counters.Allowed += uint64(rest)
			} else {
				s.counters.Denied += uint64(rest)
			}
			for i := from + 1; i < to; i++ {
				out[i] = d
			}
			return
		}
	}
	for i := from + 1; i < to; i++ {
		out[i] = s.processOne(now, k)
	}
}

// hashAt indexes the burst's cached hashes, tolerating a nil hash pass
// (callers gate use on hashes != nil).
func hashAt(hashes []uint64, i int) uint64 {
	if hashes == nil {
		return 0
	}
	return hashes[i]
}

// promoteHashed installs ent into tiers [0, upto). When the burst's cached
// flow hash for k is resident (hasHash), tiers implementing
// HashedInstaller consume it instead of re-hashing the key — the batch
// walk's install path, which is what lets SMC promotions ride the burst's
// single hash pass.
func (s *Switch) promoteHashed(k flow.Key, h uint64, hasHash bool, ent *cache.Entry, upto int) {
	for i, upper := range s.tiers[:upto] {
		if hasHash && s.hashedInst[i] != nil {
			s.hashedInst[i].InstallHashed(k, h, ent)
		} else {
			upper.Install(k, ent)
		}
	}
}

// upcallOne settles one batch-walk miss: re-probe the authoritative tier
// when a same-burst upcall may have covered the key, then fall to the
// slow path. sweepCost is the scan cost the walk already accrued for the
// key (the cost a scalar walk would report for the miss); h/hasHash carry
// the key's cached burst hash for the promotion path.
func (s *Switch) upcallOne(now uint64, k flow.Key, h uint64, hasHash bool, sweepCost int, installs *int) Decision {
	if *installs > 0 && s.installer != nil {
		ent, cost, ok := s.installer.Lookup(k, now)
		if ok {
			s.tierHits[s.promoteTo]++
			s.promoteHashed(k, h, hasHash, ent, s.promoteTo)
			return Decision{Verdict: ent.Verdict, Path: s.installer.Path(), MasksScanned: cost}
		}
		sweepCost = cost
	}
	d, installed := s.upcallHashed(now, k, h, hasHash, sweepCost)
	if installed {
		*installs++
	}
	return d
}

// classifyOnce runs one pipeline pass (tier walk -> upcall) without
// verdict accounting or recirculation handling.
func (s *Switch) classifyOnce(now uint64, k flow.Key) Decision {
	d, _, _ := s.classifyTracked(now, k)
	return d
}

// classifyTracked is the scalar tier walk: a hit on tier i is promoted
// into tiers [0, i); an upcall's synthesised megaflow is installed into
// the authoritative tier and promoted above it. It also reports the
// answering tier's index (-1 for the slow path) and entry, the provenance
// the run coalescer keys on.
func (s *Switch) classifyTracked(now uint64, k flow.Key) (Decision, int, *cache.Entry) {
	scanned := 0
	for i, t := range s.tiers {
		ent, cost, ok := t.Lookup(k, now)
		scanned += cost
		if !ok {
			continue
		}
		s.tierHits[i]++
		for _, upper := range s.tiers[:i] {
			upper.Install(k, ent)
		}
		return Decision{Verdict: ent.Verdict, Path: t.Path(), MasksScanned: scanned}, i, ent
	}
	d, _ := s.upcall(now, k, scanned)
	return d, -1, nil
}

// upcall runs the full slow-path classification, then caches the
// synthesised megaflow in the authoritative tier and references it from
// the tiers above, so their hits keep the flow warm. The bool reports
// whether a megaflow was installed (the batch tail uses it to decide when
// later misses must re-probe).
//
//lint:coldpath
func (s *Switch) upcall(now uint64, k flow.Key, scanned int) (Decision, bool) {
	return s.upcallHashed(now, k, 0, false, scanned)
}

// upcallHashed is upcall carrying the key's cached burst hash for the
// promotion of the freshly installed megaflow.
//
//lint:coldpath
func (s *Switch) upcallHashed(now uint64, k flow.Key, h uint64, hasHash bool, scanned int) (Decision, bool) {
	if s.upGuard != nil && !s.upGuard.AdmitUpcall(now, uint32(k.Get(flow.FieldInPort))) {
		// Refused at admission: the packet is dropped at the datapath
		// without a slow-path visit — no classification, no install.
		s.counters.UpcallDrops++
		return Decision{Verdict: cache.Verdict{Verdict: flowtable.Deny}, Path: PathSlow, MasksScanned: scanned}, false
	}
	s.counters.Upcalls++
	res := s.cls.Lookup(k)
	v := cache.Verdict{Verdict: flowtable.Deny}
	if res.Rule != nil {
		v = res.Rule.Action
	}
	installed := false
	if s.installer != nil {
		var ent *cache.Entry
		var err error
		if s.hashedMF != nil {
			// Sharded installer: the megaflow must land in the shard the
			// triggering key's lookups probe, selected by the key's full
			// flow hash (computed here when the burst's hash pass did not
			// run — scalar ProcessKey callers).
			if !hasHash {
				h = k.Hash()
			}
			ent, err = s.hashedMF.InsertMegaflowHashed(res.Megaflow, v, now, h)
		} else {
			ent, err = s.installer.InsertMegaflow(res.Megaflow, v, now)
		}
		if err != nil {
			s.counters.InstallErr++
		} else {
			s.promoteHashed(k, h, hasHash, ent, s.promoteTo)
			installed = true
		}
	}
	return Decision{Verdict: v, Path: PathSlow, MasksScanned: scanned}, installed
}

func (s *Switch) account(v cache.Verdict) {
	if v.Verdict == flowtable.Allow {
		s.counters.Allowed++
	} else {
		s.counters.Denied++
	}
}

// RunRevalidator performs one inline maintenance sweep: evict cache
// entries idle past the configured timeout (tier by tier) and expire stale
// conntrack entries. Returns the eviction count.
//
// This is the legacy synchronous sweep, kept as the conformance baseline
// for the clock-driven actor that now owns cache maintenance (package
// revalidator: sharded dump workers, dump-duration measurement, adaptive
// flow-limit backoff). New timelines should attach the switch to a
// revalidator.Revalidator instead of calling this.
func (s *Switch) RunRevalidator(now uint64) int {
	if s.ct != nil {
		s.ct.Expire(now)
	}
	if now < s.maxIdle {
		return 0
	}
	evicted := 0
	for _, t := range s.tiers {
		evicted += t.EvictIdle(now - s.maxIdle)
	}
	return evicted
}

// Conntrack exposes the connection tracker, or nil when stateless.
func (s *Switch) Conntrack() *conntrack.Table { return s.ct }

// Counters returns a snapshot of the switch counters.
func (s *Switch) Counters() Counters {
	c := s.counters
	c.TierHits = make([]TierHit, len(s.tiers))
	for i, t := range s.tiers {
		c.TierHits[i] = TierHit{Tier: t.Name(), Hits: s.tierHits[i]}
	}
	return c
}

// EMC exposes the microflow cache for inspection and experiments, or nil
// when the hierarchy has no EMC tier.
func (s *Switch) EMC() *cache.EMC {
	for _, t := range s.tiers {
		if et, ok := t.(*EMCTier); ok {
			return et.EMC()
		}
	}
	return nil
}

// SMC exposes the signature-match cache, or nil when the hierarchy has no
// SMC tier.
func (s *Switch) SMC() *cache.SMC {
	for _, t := range s.tiers {
		if st, ok := t.(*SMCTier); ok {
			return st.SMC()
		}
	}
	return nil
}

// megaflowBacked is any tier backed by a megaflow cache — the concrete
// MegaflowTier, but equally a fault-injection wrapper forwarding to one.
type megaflowBacked interface{ Megaflow() *cache.Megaflow }

// Megaflow exposes the megaflow cache for inspection and experiments, or
// nil when the hierarchy has no megaflow tier.
func (s *Switch) Megaflow() *cache.Megaflow {
	for _, t := range s.tiers {
		if mt, ok := t.(megaflowBacked); ok {
			return mt.Megaflow()
		}
	}
	return nil
}

// Classifier exposes the slow-path classifier for inspection.
func (s *Switch) Classifier() *classifier.Classifier { return s.cls }

// String renders a dpctl-style summary.
func (s *Switch) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "switch %q: %d rules, %d ports\n", s.name, s.table.Len(), len(s.ports))
	fmt.Fprintf(&b, "  counters: %+v\n", s.Counters())
	for _, t := range s.tiers {
		if mt, ok := t.(megaflowBacked); ok {
			fmt.Fprintf(&b, "  %s", mt.Megaflow().String())
			continue
		}
		fmt.Fprintf(&b, "  %s\n", t.Stats())
	}
	return b.String()
}
