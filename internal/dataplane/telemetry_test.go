package dataplane

import (
	"net/netip"
	"testing"

	"policyinject/internal/pkt"
	"policyinject/internal/telemetry"
)

// TestTelemetryWiring drives an instrumented switch through a mixed
// burst (distinct flows plus one malformed frame) and checks that the
// registry mirrors the switch counters, records the per-burst
// histograms, and publishes the cache gauges.
func TestTelemetryWiring(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := aclSwitch(WithTelemetry(reg))
	s.AddPort(1, "vif1")

	var fb FrameBatch
	const good = 8
	for i := 0; i < good; i++ {
		fb.Append(pkt.MustBuild(pkt.Spec{
			Src:     netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}),
			Dst:     netip.MustParseAddr("172.16.0.2"),
			Proto:   pkt.ProtoTCP,
			SrcPort: uint16(40000 + i),
			DstPort: 80,
		}), 1)
	}
	fb.Append([]byte{0xde, 0xad}, 1) // malformed: parse error, deny
	out := s.ProcessFrames(5, &fb, nil)
	if len(out) != good+1 {
		t.Fatalf("decisions = %d", len(out))
	}

	snap := reg.Snapshot()
	mustCounter := func(name string, want uint64) {
		t.Helper()
		got, ok := snap.CounterValue(name)
		if !ok || got != want {
			t.Errorf("%s = %d (present %v), want %d", name, got, ok, want)
		}
	}
	mustCounter("dp_bursts_total", 1)
	mustCounter("dp_frames_total", good+1)
	mustCounter("dp_parse_errors_total", 1)
	mustCounter("dp_allowed_total", good)

	c := s.Counters()
	if up, _ := snap.CounterValue("dp_upcalls_total"); up != c.Upcalls || up == 0 {
		t.Errorf("dp_upcalls_total = %d, switch says %d (want equal, nonzero)", up, c.Upcalls)
	}
	var tierHits uint64
	for _, th := range c.TierHits {
		tierHits += th.Hits
	}
	if got, _ := snap.CounterValue("dp_tier_hits_total"); got != tierHits {
		t.Errorf("dp_tier_hits_total = %d, switch tier hits %d", got, tierHits)
	}

	for _, h := range []string{"dp_burst_ns", "dp_burst_frames", "dp_burst_scan_cost", "dp_burst_subtable_visits"} {
		hp := snap.HistogramPoint(h)
		if hp == nil || hp.Count != 1 {
			t.Errorf("%s: want exactly one burst observation, got %+v", h, hp)
			continue
		}
		if h == "dp_burst_frames" && hp.Max != good+1 {
			t.Errorf("dp_burst_frames max = %d, want %d", hp.Max, good+1)
		}
	}
	// One tier-pass latency observation per tier (EMC + megaflow).
	var tierNs int
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "dp_tier_lookup_ns" {
			tierNs++
			if snap.Histograms[i].Count != 1 {
				t.Errorf("dp_tier_lookup_ns%v count = %d, want 1", snap.Histograms[i].Labels, snap.Histograms[i].Count)
			}
		}
	}
	if tierNs != len(s.Tiers()) {
		t.Errorf("dp_tier_lookup_ns series = %d, want one per tier (%d)", tierNs, len(s.Tiers()))
	}

	// A second identical burst answers from warm caches: no new upcalls.
	upBefore, _ := snap.CounterValue("dp_upcalls_total")
	s.ProcessFrames(6, &fb, out)
	snap2 := reg.Snapshot()
	if up2, _ := snap2.CounterValue("dp_upcalls_total"); up2 != upBefore {
		t.Errorf("warm burst raised upcalls %d -> %d", upBefore, up2)
	}
	if b, _ := snap2.CounterValue("dp_bursts_total"); b != 2 {
		t.Errorf("dp_bursts_total = %d, want 2", b)
	}

	s.PublishTelemetry()
	snap3 := reg.Snapshot()
	if g, ok := snap3.GaugeValue("dp_mf_entries"); !ok || int(g) != s.Megaflow().Len() {
		t.Errorf("dp_mf_entries = %v (present %v), megaflow holds %d", g, ok, s.Megaflow().Len())
	}
	if g, ok := snap3.GaugeValue("dp_mf_masks"); !ok || int(g) != s.Megaflow().NumMasks() {
		t.Errorf("dp_mf_masks = %v (present %v), want %d", g, ok, s.Megaflow().NumMasks())
	}
}

// TestTelemetryOffIsUntouched pins the nil-registry contract: an
// uninstrumented switch must classify identically and register
// nothing.
func TestTelemetryOffIsUntouched(t *testing.T) {
	bare := aclSwitch()
	inst := aclSwitch(WithTelemetry(telemetry.NewRegistry()))
	frame := pkt.MustBuild(pkt.Spec{
		Src:   netip.MustParseAddr("10.1.2.3"),
		Dst:   netip.MustParseAddr("172.16.0.2"),
		Proto: pkt.ProtoTCP, SrcPort: 1234, DstPort: 80,
	})
	d1, err1 := bare.Process(1, 1, frame)
	d2, err2 := inst.Process(1, 1, frame)
	if d1 != d2 || (err1 == nil) != (err2 == nil) {
		t.Errorf("instrumented switch decided differently: %+v vs %+v", d1, d2)
	}
}
