package dataplane

import (
	"testing"

	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// pmdPool builds an n-core pool carrying the two-field attack ACL
// (hand-rolled here: importing internal/attack would cycle).
func pmdPool(t testing.TB, n int) (*PMDPool, []flow.Key) {
	t.Helper()
	pool := NewPMDPool(n, "hv", WithoutEMC())
	var ipRule flow.Match
	ipRule.Key.Set(flow.FieldIPSrc, 0x0a000001)
	ipRule.Mask.SetExact(flow.FieldIPSrc)
	pool.InstallRule(flowtable.Rule{Match: ipRule, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	var portRule flow.Match
	portRule.Key.Set(flow.FieldTPDst, 80)
	portRule.Mask.SetExact(flow.FieldTPDst)
	pool.InstallRule(flowtable.Rule{Match: portRule, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
	pool.InstallRule(flowtable.Rule{Priority: 0})

	// One covert key per (d1, d2) divergence combination: 32 x 16 = 512.
	var keys []flow.Key
	for d1 := 0; d1 < 32; d1++ {
		for d2 := 0; d2 < 16; d2++ {
			var k flow.Key
			k.Set(flow.FieldEthType, flow.EthTypeIPv4)
			k.Set(flow.FieldIPProto, flow.ProtoTCP)
			k.Set(flow.FieldIPSrc, 0x0a000001^(1<<uint(31-d1)))
			k.Set(flow.FieldTPDst, uint64(80^(1<<uint(15-d2))))
			keys = append(keys, k)
		}
	}
	return pool, keys
}

func TestPMDSteeringIsStable(t *testing.T) {
	pool, keys := pmdPool(t, 4)
	for _, k := range keys[:64] {
		first := pool.Steer(k)
		for trial := 0; trial < 3; trial++ {
			if pool.Steer(k) != first {
				t.Fatal("RSS steering not deterministic")
			}
		}
	}
}

// TestPMDAttackSpreadAcrossCores: RSS dilutes the per-core mask count —
// each PMD ends up with roughly 1/N of the covert masks, and the sum
// matches the single-core count.
func TestPMDAttackSpreadAcrossCores(t *testing.T) {
	const n = 4
	pool, keys := pmdPool(t, n)
	for _, k := range keys {
		pool.ProcessKey(1, k)
	}
	per := pool.MasksPerPMD()
	total := 0
	for i, m := range per {
		total += m
		// Each core should hold a substantial share, not everything.
		if m < 512/n/2 || m > 512*3/(n*2) {
			t.Errorf("pmd %d holds %d masks; expected ~%d (per-core dilution)", i, m, 512/n)
		}
	}
	if total != 512 {
		t.Errorf("masks across cores = %d, want 512 (keys partition)", total)
	}
}

// TestPMDVictimPaysOnlyItsCore: the victim flow is pinned to one PMD and
// scans only that core's masks.
func TestPMDVictimPaysOnlyItsCore(t *testing.T) {
	pool, keys := pmdPool(t, 4)
	for _, k := range keys {
		pool.ProcessKey(1, k)
	}
	var victim flow.Key
	victim.Set(flow.FieldEthType, flow.EthTypeIPv4)
	victim.Set(flow.FieldIPProto, flow.ProtoTCP)
	victim.Set(flow.FieldIPSrc, 0xc0a80005)
	victim.Set(flow.FieldTPDst, 5201)
	core := pool.Steer(victim)
	d := pool.ProcessKey(2, victim)
	coreMasks := pool.MasksPerPMD()[core]
	if d.MasksScanned > coreMasks+2 {
		t.Fatalf("victim scanned %d masks; its core holds %d", d.MasksScanned, coreMasks)
	}
	if d.Verdict.Verdict != flowtable.Deny {
		t.Fatalf("victim verdict: %v (no allow rule covers it)", d.Verdict)
	}
}

func TestPMDProcessBatchParallel(t *testing.T) {
	pool, keys := pmdPool(t, 4)
	out := pool.ProcessBatch(1, keys, nil)
	if len(out) != len(keys) {
		t.Fatalf("batch produced %d decisions for %d keys", len(out), len(keys))
	}
	for i, d := range out {
		if d.Verdict.Verdict != flowtable.Deny {
			t.Fatalf("covert key %d verdict %v, want deny", i, d.Verdict)
		}
	}
	// Same end state as sequential processing.
	sum := 0
	for _, m := range pool.MasksPerPMD() {
		sum += m
	}
	if sum != 512 {
		t.Fatalf("masks after batch = %d", sum)
	}
	// Replay is idempotent and safe to run again in parallel; the output
	// buffer is reused when large enough.
	out2 := pool.ProcessBatch(2, keys, out)
	if &out2[0] != &out[0] {
		t.Error("ProcessBatch did not reuse the output buffer")
	}
	sum2 := 0
	for _, m := range pool.MasksPerPMD() {
		sum2 += m
	}
	if sum2 != sum {
		t.Fatalf("parallel replay changed masks %d -> %d", sum, sum2)
	}
}

// TestPMDBatchMatchesSequential asserts the batch contract: RSS steering
// is deterministic, and ProcessBatch on one pool yields decision-for-
// decision the same results (and the same per-core cache state) as a
// sequential ProcessKey loop on an identically-built pool.
func TestPMDBatchMatchesSequential(t *testing.T) {
	seqPool, keys := pmdPool(t, 4)
	batchPool, _ := pmdPool(t, 4)

	// Steering is a pure function of the key: identical across pools.
	for _, k := range keys {
		if seqPool.Steer(k) != batchPool.Steer(k) {
			t.Fatal("RSS steering differs between identically-built pools")
		}
	}

	seq := make([]Decision, 0, len(keys))
	for _, k := range keys {
		seq = append(seq, seqPool.ProcessKey(1, k))
	}
	batch := batchPool.ProcessBatch(1, keys, nil)

	for i := range keys {
		if seq[i] != batch[i] {
			t.Fatalf("key %d: sequential %+v != batch %+v", i, seq[i], batch[i])
		}
	}
	seqMasks := seqPool.MasksPerPMD()
	batchMasks := batchPool.MasksPerPMD()
	for i := range seqMasks {
		if seqMasks[i] != batchMasks[i] {
			t.Fatalf("pmd %d masks: sequential %d != batch %d", i, seqMasks[i], batchMasks[i])
		}
	}
}

func TestPMDPoolDefaults(t *testing.T) {
	pool := NewPMDPool(0, "hv")
	if pool.N() != 1 {
		t.Fatalf("N = %d, want clamped 1", pool.N())
	}
	if pool.PMD(0) == nil {
		t.Fatal("missing pmd")
	}
	if got := pool.RunRevalidator(100); got != 0 {
		t.Fatalf("revalidator on empty pool evicted %d", got)
	}
}
