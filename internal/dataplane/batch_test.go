package dataplane

import (
	"fmt"
	"math/rand"
	"testing"

	"policyinject/internal/acl"
	"policyinject/internal/cache"
	"policyinject/internal/conntrack"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"

	"net/netip"
)

// scalarOnly hides a tier's batch capability: the wrapper's method set is
// exactly Tier, so the switch's generic walk must take the per-key
// fallback. scalarInstaller does the same while keeping the authoritative
// tier's install capability.
type scalarOnly struct{ Tier }

type scalarInstaller struct{ MegaflowInstaller }

// batchEq fatals unless the two switches produced identical decisions and
// identical switch-level counters.
func batchEq(t *testing.T, label string, seq, batch []Decision, seqSW, batchSW *Switch) {
	t.Helper()
	for i := range seq {
		if seq[i] != batch[i] {
			t.Fatalf("%s: key %d: sequential %+v != batch %+v", label, i, seq[i], batch[i])
		}
	}
	a, b := seqSW.Counters(), batchSW.Counters()
	if a.Packets != b.Packets || a.Upcalls != b.Upcalls || a.Allowed != b.Allowed ||
		a.Denied != b.Denied || a.ParseError != b.ParseError || a.InstallErr != b.InstallErr {
		t.Fatalf("%s: counters diverge:\n sequential %+v\n batch      %+v", label, a, b)
	}
	if len(a.TierHits) != len(b.TierHits) {
		t.Fatalf("%s: tier count diverges", label)
	}
	for i := range a.TierHits {
		if a.TierHits[i] != b.TierHits[i] {
			t.Fatalf("%s: tier %q hits: sequential %d != batch %d",
				label, a.TierHits[i].Tier, a.TierHits[i].Hits, b.TierHits[i].Hits)
		}
	}
}

// TestBatchMatchesSequentialStateful runs the full switch — conntrack
// recirculation included — over staged bursts (connection setup, replies,
// established data) and checks ProcessBatch produces exactly the
// decisions and counters of a sequential ProcessKey loop.
func TestBatchMatchesSequentialStateful(t *testing.T) {
	build := func() *Switch {
		sw := New("sg-hv", WithoutEMC(), WithConntrack(conntrack.Config{}))
		group := &acl.ACL{Stateful: true}
		group.Allow(acl.Entry{Src: netip.MustParsePrefix("10.0.0.0/8")})
		group.Allow(acl.Entry{Proto: 6, DstPort: acl.Port(443)})
		rules, err := group.Compile()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rules {
			sw.InstallRule(r)
		}
		return sw
	}
	seqSW, batchSW := build(), build()

	const flows = 16
	fwd := make([]flow.Key, flows)
	rev := make([]flow.Key, flows)
	for i := 0; i < flows; i++ {
		fwd[i] = conntrack.MustTuple("10.1.2.3", "172.16.0.1", 6, uint16(40000+i), 443).Key(1)
		rev[i] = conntrack.MustTuple("172.16.0.1", "10.1.2.3", 6, 443, uint16(40000+i)).Key(2)
	}
	outside := conntrack.MustTuple("192.168.9.9", "172.16.0.1", 6, 5555, 22).Key(1)

	bursts := [][]flow.Key{
		fwd, // SYNs: all recirculate, +new, commit
		rev, // replies: recirculate, established
		append(append([]flow.Key{}, fwd...), outside), // data + a denied stray
	}
	var seqOut, batchOut []Decision
	for bi, burstKeys := range bursts {
		now := uint64(bi + 1)
		seqOut = seqOut[:0]
		for _, k := range burstKeys {
			seqOut = append(seqOut, seqSW.ProcessKey(now, k))
		}
		batchOut = batchSW.ProcessBatch(now, burstKeys, batchOut)
		batchEq(t, fmt.Sprintf("burst %d", bi), seqOut, batchOut, seqSW, batchSW)
	}
	if seqSW.Conntrack().Len() != batchSW.Conntrack().Len() {
		t.Fatalf("conntrack table size diverges: %d vs %d",
			seqSW.Conntrack().Len(), batchSW.Conntrack().Len())
	}
}

// TestBatchFallbackForNonBatchTiers pins the compatibility contract: a
// WithTiers hierarchy whose tiers do not implement BatchTier still
// classifies bursts correctly — the walk probes them key by key.
func TestBatchFallbackForNonBatchTiers(t *testing.T) {
	build := func() *Switch {
		sw := New("custom", WithTiers(
			scalarOnly{NewEMCTier(cache.EMCConfig{})},
			scalarInstaller{NewMegaflowTier(cache.MegaflowConfig{})},
		))
		var m flow.Match
		m.Key.Set(flow.FieldIPSrc, 0x0a000000)
		m.Mask.SetPrefix(flow.FieldIPSrc, 8)
		sw.InstallRule(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
		sw.InstallRule(flowtable.Rule{Priority: 0})
		return sw
	}
	if _, isBatch := build().Tiers()[0].(BatchTier); isBatch {
		t.Fatal("test fixture broken: wrapped tier still exposes BatchTier")
	}
	seqSW, batchSW := build(), build()
	keys := make([]flow.Key, 0, 48)
	for i := 0; i < 48; i++ {
		keys = append(keys, tcpKey(uint64(0x0a000001+i%5), 0x0a000002, uint64(2000+i), 80))
	}
	for round := 0; round < 2; round++ { // cold then warm
		now := uint64(round + 1)
		var seq []Decision
		for _, k := range keys {
			seq = append(seq, seqSW.ProcessKey(now, k))
		}
		batch := batchSW.ProcessBatch(now, keys, nil)
		batchEq(t, fmt.Sprintf("round %d", round), seq, batch, seqSW, batchSW)
	}
}

// TestRunCoalescingExactness is the property test for same-flow run
// coalescing: over randomized bursts full of elephant runs, a switch with
// coalescing enabled must produce exactly the decisions, switch counters
// and per-tier stats of an identically-built switch with coalescing
// disabled — the accounting shortcut must be observationally invisible.
func TestRunCoalescingExactness(t *testing.T) {
	hierarchies := []struct {
		name string
		opts []Option
	}{
		{"emc+tss", nil},
		{"emc+smc+tss", []Option{WithSMC(cache.SMCConfig{Entries: 1 << 12})}},
		{"smc+tss", []Option{WithoutEMC(), WithSMC(cache.SMCConfig{Entries: 1 << 12})}},
		{"tss-only", []Option{WithoutEMC()}},
		{"sorted-tss", []Option{WithoutEMC(), WithMegaflow(cache.MegaflowConfig{SortByHits: true, SortEvery: 8})}},
	}
	for _, h := range hierarchies {
		t.Run(h.name, func(t *testing.T) {
			build := func(extra ...Option) *Switch {
				// Same name on both switches: the EMC insertion PRNG seed
				// derives from it, so the pair draws identical sequences.
				sw := New("prop", append(append([]Option{}, h.opts...), extra...)...)
				var m flow.Match
				m.Key.Set(flow.FieldIPSrc, 0x0a000000)
				m.Mask.SetPrefix(flow.FieldIPSrc, 8)
				sw.InstallRule(flowtable.Rule{Match: m, Priority: 10, Action: flowtable.Action{Verdict: flowtable.Allow}})
				sw.InstallRule(flowtable.Rule{Priority: 0})
				return sw
			}
			on, off := build(), build(WithoutRunCoalescing())

			rng := rand.New(rand.NewSource(42))
			pool := make([]flow.Key, 24)
			for i := range pool {
				// Mix of allowed (10/8) and denied sources.
				src := uint64(0x0a000000 + rng.Intn(1<<16))
				if i%5 == 0 {
					src = uint64(0xc0a80000 + rng.Intn(1<<8))
				}
				pool[i] = tcpKey(src, 0x0a000002, uint64(1024+rng.Intn(4096)), 80)
			}
			var onOut, offOut []Decision
			for tick := uint64(1); tick <= 8; tick++ {
				// Elephant-shaped burst: random flows, geometric run lengths.
				var burstKeys []flow.Key
				for len(burstKeys) < 96 {
					k := pool[rng.Intn(len(pool))]
					runLen := 1 << rng.Intn(5) // 1..16
					for j := 0; j < runLen && len(burstKeys) < 96; j++ {
						burstKeys = append(burstKeys, k)
					}
				}
				onOut = on.ProcessBatch(tick, burstKeys, onOut)
				offOut = off.ProcessBatch(tick, burstKeys, offOut)
				for i := range burstKeys {
					if onOut[i] != offOut[i] {
						t.Fatalf("tick %d key %d: coalesced %+v != exact %+v", tick, i, onOut[i], offOut[i])
					}
				}
			}
			a, b := on.Counters(), off.Counters()
			if a.Packets != b.Packets || a.Upcalls != b.Upcalls || a.Allowed != b.Allowed || a.Denied != b.Denied {
				t.Fatalf("switch counters diverge:\n coalesced %+v\n exact     %+v", a, b)
			}
			for i, tier := range on.Tiers() {
				if sa, sb := tier.Stats(), off.Tiers()[i].Stats(); sa != sb {
					t.Fatalf("tier %q stats diverge:\n coalesced %+v\n exact     %+v", tier.Name(), sa, sb)
				}
			}
		})
	}
}

// TestSMCForcesProbabilisticEMCInsertion pins the OVS coupling: enabling
// the SMC without an explicit EMC insertion policy switches the EMC to
// probabilistic insertion (1/100), while the default hierarchy keeps
// inserting always. An explicit InsertProb of 1 opts back out.
func TestSMCForcesProbabilisticEMCInsertion(t *testing.T) {
	flood := func(sw *Switch) int {
		for i := 0; i < 64; i++ {
			k := tcpKey(uint64(0x0a000001+i), 0x0a000002, 1000, 80)
			sw.ProcessKey(1, k) // upcall
			sw.ProcessKey(2, k) // megaflow hit -> EMC install attempt
		}
		return sw.EMC().Len()
	}
	if got := flood(aclSwitch()); got != 64 {
		t.Fatalf("default hierarchy cached %d/64 flows in the EMC, want all", got)
	}
	smcLen := flood(aclSwitch(WithSMC(cache.SMCConfig{Entries: 1 << 12})))
	if smcLen > 16 {
		t.Fatalf("SMC-enabled hierarchy cached %d/64 flows in the EMC; 1/100 insertion should admit almost none", smcLen)
	}
	explicit := flood(aclSwitch(
		WithEMC(cache.EMCConfig{InsertProb: 1}),
		WithSMC(cache.SMCConfig{Entries: 1 << 12})))
	if explicit != 64 {
		t.Fatalf("explicit InsertProb=1 cached %d/64 flows, want all", explicit)
	}
}
