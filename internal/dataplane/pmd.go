package dataplane

import (
	"fmt"
	"sync"

	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// PMDPool models the multi-core OVS datapath: one poll-mode-driver (PMD)
// instance per core, each with its *own* caches (EMC and megaflow TSS,
// exactly as OVS keeps dpcls instances per PMD), fed by RSS — packets are
// steered to a PMD by flow-key hash, so one flow's packets always land on
// the same core.
//
// The multi-queue view adds an honest nuance to the attack analysis: RSS
// spreads the covert stream's distinct 5-tuples across PMDs, so each core
// accumulates roughly 1/N of the masks — and the victim's flow, pinned to
// one core, scans only that core's share. The attacker's counter is
// equally mundane: the covert stream is so cheap that sending N times as
// many packets (or biasing the 5-tuples toward the victim's queue, where
// the RSS function is known) restores the full count.
type PMDPool struct {
	pmds []*Switch
}

// NewPMDPool builds n PMD instances, each configured per cfg. Rule
// installation is replicated to every PMD, as the shared classifier would
// be visible to each.
func NewPMDPool(n int, cfg Config) *PMDPool {
	if n < 1 {
		n = 1
	}
	p := &PMDPool{}
	for i := 0; i < n; i++ {
		c := cfg
		c.Name = fmt.Sprintf("%s/pmd%d", cfg.Name, i)
		p.pmds = append(p.pmds, New(c))
	}
	return p
}

// N returns the number of PMDs.
func (p *PMDPool) N() int { return len(p.pmds) }

// PMD returns the i-th instance, for inspection.
func (p *PMDPool) PMD(i int) *Switch { return p.pmds[i] }

// InstallRule replicates a rule to every PMD.
func (p *PMDPool) InstallRule(r flowtable.Rule) {
	for _, sw := range p.pmds {
		sw.InstallRule(r)
	}
}

// Steer returns the PMD index RSS would pick for the key.
func (p *PMDPool) Steer(k flow.Key) int {
	return int(k.Hash() % uint64(len(p.pmds)))
}

// ProcessKey steers the packet to its PMD and processes it there. Not safe
// for concurrent use; use ProcessBatch for parallel processing.
func (p *PMDPool) ProcessKey(now uint64, k flow.Key) Decision {
	return p.pmds[p.Steer(k)].ProcessKey(now, k)
}

// ProcessBatch distributes keys to their PMDs and processes each PMD's
// share on its own goroutine — the actual parallelism of a multi-queue
// NIC. It returns the per-PMD packet counts.
func (p *PMDPool) ProcessBatch(now uint64, keys []flow.Key) []int {
	buckets := make([][]flow.Key, len(p.pmds))
	for _, k := range keys {
		i := p.Steer(k)
		buckets[i] = append(buckets[i], k)
	}
	var wg sync.WaitGroup
	counts := make([]int, len(p.pmds))
	for i, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, bucket []flow.Key) {
			defer wg.Done()
			for _, k := range bucket {
				p.pmds[i].ProcessKey(now, k)
			}
			counts[i] = len(bucket)
		}(i, bucket)
	}
	wg.Wait()
	return counts
}

// MasksPerPMD reports each PMD's megaflow mask count — the per-core view
// of the attack's footprint.
func (p *PMDPool) MasksPerPMD() []int {
	out := make([]int, len(p.pmds))
	for i, sw := range p.pmds {
		out[i] = sw.Megaflow().NumMasks()
	}
	return out
}

// RunRevalidator sweeps every PMD.
func (p *PMDPool) RunRevalidator(now uint64) int {
	n := 0
	for _, sw := range p.pmds {
		n += sw.RunRevalidator(now)
	}
	return n
}
