package dataplane

import (
	"fmt"
	"sync"

	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// PMDPool models the multi-core OVS datapath: one poll-mode-driver (PMD)
// instance per core, each with its *own* cache hierarchy (per-PMD EMC, SMC
// and megaflow TSS, exactly as OVS keeps dpcls instances per PMD), fed by
// RSS — packets are steered to a PMD by flow-key hash, so one flow's
// packets always land on the same core.
//
// The multi-queue view adds an honest nuance to the attack analysis: RSS
// spreads the covert stream's distinct 5-tuples across PMDs, so each core
// accumulates roughly 1/N of the masks — and the victim's flow, pinned to
// one core, scans only that core's share. The attacker's counter is
// equally mundane: the covert stream is so cheap that sending N times as
// many packets (or biasing the 5-tuples toward the victim's queue, where
// the RSS function is known) restores the full count.
type PMDPool struct {
	pmds []*Switch
}

// NewPMDPool builds n PMD instances named "<name>/pmd<i>", each assembled
// from the same options (so each PMD gets its own tier instances). Rule
// installation is replicated to every PMD, as the shared classifier would
// be visible to each. WithTiers is rejected (panics): its explicit tier
// instances would be shared across PMDs and raced by ProcessBatch.
func NewPMDPool(n int, name string, opts ...Option) *PMDPool {
	var probe config
	for _, o := range opts {
		o(&probe)
	}
	if probe.tiersSet {
		panic("dataplane: NewPMDPool cannot take WithTiers; each PMD needs its own tier instances")
	}
	if n < 1 {
		n = 1
	}
	p := &PMDPool{}
	for i := 0; i < n; i++ {
		p.pmds = append(p.pmds, New(fmt.Sprintf("%s/pmd%d", name, i), opts...))
	}
	return p
}

// N returns the number of PMDs.
func (p *PMDPool) N() int { return len(p.pmds) }

// PMD returns the i-th instance, for inspection.
func (p *PMDPool) PMD(i int) *Switch { return p.pmds[i] }

// InstallRule replicates a rule to every PMD.
func (p *PMDPool) InstallRule(r flowtable.Rule) {
	for _, sw := range p.pmds {
		sw.InstallRule(r)
	}
}

// Steer returns the PMD index RSS would pick for the key.
func (p *PMDPool) Steer(k flow.Key) int {
	return int(k.Hash() % uint64(len(p.pmds)))
}

// ProcessKey steers the packet to its PMD and processes it there. Not safe
// for concurrent use; use ProcessBatch for parallel processing.
func (p *PMDPool) ProcessKey(now uint64, k flow.Key) Decision {
	return p.pmds[p.Steer(k)].ProcessKey(now, k)
}

// ProcessBatch distributes keys to their PMDs by RSS hash and processes
// each PMD's share on its own goroutine — the actual parallelism of a
// multi-queue NIC. Decisions are written into out (grown if needed) in
// input order and returned. Each PMD sees its subsequence in input order,
// so the results are identical to a sequential ProcessKey loop.
func (p *PMDPool) ProcessBatch(now uint64, keys []flow.Key, out []Decision) []Decision {
	out = GrowDecisions(out, len(keys))
	buckets := make([][]int, len(p.pmds)) // key indices per PMD, in input order
	for i, k := range keys {
		pmd := p.Steer(k)
		buckets[pmd] = append(buckets[pmd], i)
	}
	var wg sync.WaitGroup
	for pmd, idxs := range buckets {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(sw *Switch, idxs []int) {
			defer wg.Done()
			for _, i := range idxs {
				out[i] = sw.ProcessKey(now, keys[i])
			}
		}(p.pmds[pmd], idxs)
	}
	wg.Wait()
	return out
}

// MasksPerPMD reports each PMD's megaflow mask count — the per-core view
// of the attack's footprint.
func (p *PMDPool) MasksPerPMD() []int {
	out := make([]int, len(p.pmds))
	for i, sw := range p.pmds {
		out[i] = sw.Megaflow().NumMasks()
	}
	return out
}

// RunRevalidator sweeps every PMD.
func (p *PMDPool) RunRevalidator(now uint64) int {
	n := 0
	for _, sw := range p.pmds {
		n += sw.RunRevalidator(now)
	}
	return n
}
