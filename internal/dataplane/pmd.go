package dataplane

import (
	"fmt"
	"sync"

	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// PMDPool models the multi-core OVS datapath: one poll-mode-driver (PMD)
// instance per core, each with its *own* cache hierarchy (per-PMD EMC, SMC
// and megaflow TSS, exactly as OVS keeps dpcls instances per PMD), fed by
// RSS — packets are steered to a PMD by flow-key hash, so one flow's
// packets always land on the same core.
//
// The multi-queue view adds an honest nuance to the attack analysis: RSS
// spreads the covert stream's distinct 5-tuples across PMDs, so each core
// accumulates roughly 1/N of the masks — and the victim's flow, pinned to
// one core, scans only that core's share. The attacker's counter is
// equally mundane: the covert stream is so cheap that sending N times as
// many packets (or biasing the 5-tuples toward the victim's queue, where
// the RSS function is known) restores the full count.
type PMDPool struct {
	pmds   []*Switch
	lanes  []pmdLane // ProcessBatch/ProcessFrames scratch, one lane per PMD
	hashes []uint64  // the burst's cached flow hashes (steering + tier walks)
	shared bool      // NewSharedPMDPool: all PMDs view one sharded switch
}

// steerLanes clears the lanes and scatters keys (with their precomputed
// flow hashes) to their RSS-selected PMDs, recording each key's input
// index. idx maps key position to input position (nil: identity), so the
// frame path can steer a compacted sub-burst while scattering decisions
// back to frame order.
func (p *PMDPool) steerLanes(keys []flow.Key, hashes []uint64, idx []int) {
	if p.lanes == nil {
		p.lanes = make([]pmdLane, len(p.pmds))
	}
	for i := range p.lanes {
		l := &p.lanes[i]
		l.idx = l.idx[:0]
		l.keys = l.keys[:0]
		l.hashes = l.hashes[:0]
	}
	nPMD := uint64(len(p.pmds))
	for i, k := range keys {
		h := hashes[i]
		l := &p.lanes[h%nPMD]
		pos := i
		if idx != nil {
			pos = idx[i]
		}
		l.idx = append(l.idx, pos)
		l.keys = append(l.keys, k)
		l.hashes = append(l.hashes, h)
	}
}

// runLanes processes every non-empty lane as one sub-burst on its own PMD
// goroutine, then scatters the decisions back to input order in out.
func (p *PMDPool) runLanes(now uint64, out []Decision) {
	var wg sync.WaitGroup
	for li := range p.lanes {
		l := &p.lanes[li]
		if len(l.idx) == 0 {
			continue
		}
		wg.Add(1)
		go func(sw *Switch, l *pmdLane) {
			defer wg.Done()
			l.out = GrowDecisions(l.out, len(l.keys))
			sw.counters.Packets += uint64(len(l.keys))
			sw.processBatch(now, l.keys, l.hashes, l.out)
		}(p.pmds[li], l)
	}
	wg.Wait()
	for li := range p.lanes {
		l := &p.lanes[li]
		for j, i := range l.idx {
			out[i] = l.out[j]
		}
	}
}

// pmdLane is one PMD's share of a burst: the key indices it owns (input
// order), the compacted keys/hashes handed to its batch walk, and its
// decisions before the scatter back to input order.
type pmdLane struct {
	idx    []int
	keys   []flow.Key
	hashes []uint64
	out    []Decision
}

// NewPMDPool builds n PMD instances named "<name>/pmd<i>", each assembled
// from the same options (so each PMD gets its own tier instances). Rule
// installation is replicated to every PMD, as the shared classifier would
// be visible to each. WithTiers is rejected (panics): its explicit tier
// instances would be shared across PMDs and raced by ProcessBatch.
func NewPMDPool(n int, name string, opts ...Option) *PMDPool {
	var probe config
	for _, o := range opts {
		o(&probe)
	}
	if probe.tiersSet {
		panic("dataplane: NewPMDPool cannot take WithTiers; each PMD needs its own tier instances")
	}
	if n < 1 {
		n = 1
	}
	p := &PMDPool{}
	for i := 0; i < n; i++ {
		p.pmds = append(p.pmds, New(fmt.Sprintf("%s/pmd%d", name, i), opts...))
	}
	return p
}

// NewSharedPMDPool builds n PMDs sharing ONE sharded switch instead of
// owning disjoint tier instances: the real multi-writer regime, where
// every core installs into and reads from the same caches. PMD 0 is the
// primary (it owns the classifier, the flow table and telemetry); PMDs
// 1..n-1 are views sharing the primary's tiers, slow path and install
// capabilities while keeping their own counters, ports and batch
// scratch — so per-PMD counters stay single-writer plain and only the
// tiers themselves are contended, behind their ConcurrentTier contract.
//
// The default hierarchy is sharded automatically (WithShards, with
// cache.DefaultShards unless the options pick a count); a WithTiers
// hierarchy must consist of ConcurrentTier implementations. Panics on
// WithConntrack and WithUpcallGuard: conntrack.Table and the admission
// guard are single-goroutine state that cannot be shared across PMDs
// (use NewPMDPool's per-PMD instances for those experiments).
//
// Rule installation goes through the primary (InstallRule does this)
// and must quiesce traffic, exactly as on a single switch: the
// classifier itself is read-pure but not mutation-safe under readers.
func NewSharedPMDPool(n int, name string, opts ...Option) *PMDPool {
	var probe config
	for _, o := range opts {
		o(&probe)
	}
	if probe.conntrack != nil {
		panic("dataplane: NewSharedPMDPool cannot take WithConntrack; conntrack.Table is single-goroutine state")
	}
	if probe.upGuard != nil {
		panic("dataplane: NewSharedPMDPool cannot take WithUpcallGuard; admission guard state is single-goroutine")
	}
	if !probe.shardsSet && !probe.tiersSet {
		opts = append(opts, WithShards(probe.shards))
	}
	if n < 1 {
		n = 1
	}
	primary := New(fmt.Sprintf("%s/pmd0", name), opts...)
	for _, t := range primary.tiers {
		if _, ok := t.(ConcurrentTier); !ok {
			panic(fmt.Sprintf("dataplane: NewSharedPMDPool requires ConcurrentTier tiers; %q is not", t.Name()))
		}
	}
	p := &PMDPool{shared: true, pmds: []*Switch{primary}}
	for i := 1; i < n; i++ {
		p.pmds = append(p.pmds, newSharedView(primary, fmt.Sprintf("%s/pmd%d", name, i)))
	}
	return p
}

// newSharedView builds a PMD view of primary: shared slow path, tiers
// and install capabilities; private name, counters, ports and scratch.
func newSharedView(primary *Switch, name string) *Switch {
	return &Switch{
		name:       name,
		maxIdle:    primary.maxIdle,
		cls:        primary.cls,
		ports:      make(map[uint32]*Port),
		tiers:      primary.tiers,
		tierHits:   make([]uint64, len(primary.tiers)),
		hashedInst: primary.hashedInst,
		installer:  primary.installer,
		hashedMF:   primary.hashedMF,
		promoteTo:  primary.promoteTo,
		noCoalesce: primary.noCoalesce,
		needHashes: primary.needHashes,
	}
}

// Shared reports whether all PMDs view one sharded switch
// (NewSharedPMDPool) rather than owning disjoint tier instances.
func (p *PMDPool) Shared() bool { return p.shared }

// N returns the number of PMDs.
func (p *PMDPool) N() int { return len(p.pmds) }

// PMD returns the i-th instance, for inspection.
func (p *PMDPool) PMD(i int) *Switch { return p.pmds[i] }

// InstallRule replicates a rule to every PMD — or, on a shared pool,
// installs it once through the primary (the classifier, flow table and
// tiers are the same objects on every view).
func (p *PMDPool) InstallRule(r flowtable.Rule) {
	if p.shared {
		p.pmds[0].InstallRule(r)
		return
	}
	for _, sw := range p.pmds {
		sw.InstallRule(r)
	}
}

// Steer returns the PMD index RSS would pick for the key.
func (p *PMDPool) Steer(k flow.Key) int {
	return int(k.Hash() % uint64(len(p.pmds)))
}

// ProcessKey steers the packet to its PMD and processes it there. Not safe
// for concurrent use; use ProcessBatch for parallel processing.
func (p *PMDPool) ProcessKey(now uint64, k flow.Key) Decision {
	return p.pmds[p.Steer(k)].ProcessKey(now, k)
}

// ProcessBatch distributes keys to their PMDs by RSS hash and processes
// each PMD's share as one sub-burst on its own goroutine — the actual
// parallelism of a multi-queue NIC. Each flow hash is computed once and
// reused for both steering and the PMD's batched tier walk, and each PMD
// sees its subsequence in input order, so results land in out (grown if
// needed) in input order. Not safe for concurrent use: the pool owns its
// scatter/gather scratch.
func (p *PMDPool) ProcessBatch(now uint64, keys []flow.Key, out []Decision) []Decision {
	out = GrowDecisions(out, len(keys))
	p.hashes = flow.HashKeys(keys, p.hashes)
	p.steerLanes(keys, p.hashes, nil)
	p.runLanes(now, out)
	return out
}

// ProcessFrames is the pool's frame-first ingress: one ExtractBatch pass,
// one hash pass — the cached hashes steer RSS *and* feed each PMD's
// batched tier walk, exactly once per frame — then per-PMD sub-bursts in
// parallel. Decisions land in out (grown if needed) in frame order.
//
// Malformed frames never reach a PMD's classifier: each gets a Deny
// decision and is billed (Packets, ParseError) to PMD 0, the default
// queue a NIC steers unparseable frames to since RSS has no fields to
// hash. The pool does no per-port byte/packet accounting on any path —
// ports are a single-switch concept the pool does not replicate — so use
// Switch.ProcessFrames where port counters matter. Not safe for
// concurrent use.
func (p *PMDPool) ProcessFrames(now uint64, fb *FrameBatch, out []Decision) []Decision {
	n := fb.Len()
	out = GrowDecisions(out, n)
	if n == 0 {
		return out
	}
	keys, errs, bad := fb.Extract()
	var idx []int
	if bad > 0 {
		keys = fb.compactValid(keys, errs)
		idx = fb.validIdx
		pmd0 := p.pmds[0]
		pmd0.counters.Packets += uint64(bad)
		pmd0.counters.ParseError += uint64(bad)
		for i, err := range errs {
			if err != nil {
				out[i] = denyDecision()
			}
		}
	}
	p.hashes = flow.HashKeys(keys, p.hashes)
	p.steerLanes(keys, p.hashes, idx)
	p.runLanes(now, out)
	return out
}

// MasksPerPMD reports each PMD's megaflow mask count — the per-core view
// of the attack's footprint. On a shared pool every PMD sees the same
// sharded cache, so each slot reports the global distinct-mask count.
func (p *PMDPool) MasksPerPMD() []int {
	out := make([]int, len(p.pmds))
	for i, sw := range p.pmds {
		if mf := sw.Megaflow(); mf != nil {
			out[i] = mf.NumMasks()
		} else if smf := sw.ShardedMegaflow(); smf != nil {
			out[i] = smf.NumMasks()
		}
	}
	return out
}

// RunRevalidator sweeps every PMD inline — the legacy maintenance hook;
// the revalidator actor attaches each PMD as its own dump shard instead
// (revalidator.Revalidator.AttachPool). A shared pool sweeps once,
// through the primary: the tiers are the same objects on every view.
func (p *PMDPool) RunRevalidator(now uint64) int {
	if p.shared {
		return p.pmds[0].RunRevalidator(now)
	}
	n := 0
	for _, sw := range p.pmds {
		n += sw.RunRevalidator(now)
	}
	return n
}
