package dataplane

import (
	"net/netip"
	"testing"

	"policyinject/internal/acl"
	"policyinject/internal/conntrack"
	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// statefulSwitch builds a conntrack-enabled switch with a stateful
// security group: allow new connections from 10.0.0.0/8 to port 443,
// established both ways, deny the rest.
func statefulSwitch(t testing.TB, ctCfg conntrack.Config) *Switch {
	t.Helper()
	sw := New("sg-hv", WithoutEMC(), WithConntrack(ctCfg))
	group := &acl.ACL{
		Comment:  "web-sg",
		Stateful: true,
	}
	// Two entries, as security groups typically accrete them: a trusted
	// source network and a public service port. (Two entries = two
	// subtables = multiplicative divergence ladders; see
	// attack.Reflected.)
	group.Allow(acl.Entry{Src: netip.MustParsePrefix("10.0.0.0/8")})
	group.Allow(acl.Entry{Proto: 6, DstPort: acl.Port(443)})
	rules, err := group.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		sw.InstallRule(r)
	}
	return sw
}

func tup(src, dst string, sport, dport uint16) flow.FiveTuple {
	return conntrack.MustTuple(src, dst, 6, sport, dport)
}

func TestStatefulConnectionAdmitted(t *testing.T) {
	sw := statefulSwitch(t, conntrack.Config{})
	fwd := tup("10.1.2.3", "172.16.0.1", 40000, 443).Key(1)
	rev := tup("172.16.0.1", "10.1.2.3", 443, 40000).Key(2)

	// SYN: recirculated, +new, matches the whitelist, committed.
	d := sw.ProcessKey(1, fwd)
	if d.Verdict.Verdict != flowtable.Allow || !d.Recirculated {
		t.Fatalf("syn: %+v", d)
	}
	if sw.Conntrack().Len() != 1 {
		t.Fatalf("conns = %d", sw.Conntrack().Len())
	}
	// SYN-ACK comes back: the whitelist does NOT cover dst 10/8, yet the
	// established shortcut admits it — the whole point of stateful
	// groups.
	d = sw.ProcessKey(2, rev)
	if d.Verdict.Verdict != flowtable.Allow {
		t.Fatalf("syn-ack denied: %+v", d)
	}
	// Data both ways: established.
	if d := sw.ProcessKey(3, fwd); d.Verdict.Verdict != flowtable.Allow {
		t.Fatalf("data fwd: %+v", d)
	}
	if d := sw.ProcessKey(3, rev); d.Verdict.Verdict != flowtable.Allow {
		t.Fatalf("data rev: %+v", d)
	}
}

func TestStatefulDeniesOutsideWhitelist(t *testing.T) {
	sw := statefulSwitch(t, conntrack.Config{})
	// Outside the source whitelist AND the service port: recirculated,
	// +new, no entry matches -> deny, and crucially NOT committed.
	d := sw.ProcessKey(1, tup("192.168.1.1", "172.16.0.1", 40000, 22).Key(1))
	if d.Verdict.Verdict != flowtable.Deny {
		t.Fatalf("ssh allowed: %+v", d)
	}
	if sw.Conntrack().Len() != 0 {
		t.Fatal("denied flow was committed")
	}
	// An unsolicited "reply-looking" packet is +new (nothing committed):
	// denied even though it targets the whitelisted port range reversed.
	d = sw.ProcessKey(2, tup("172.16.0.1", "10.1.2.3", 443, 40000).Key(2))
	if d.Verdict.Verdict != flowtable.Deny {
		t.Fatalf("unsolicited reply allowed: %+v", d)
	}
}

func TestStatefulRuleSetWithoutConntrackFailsClosed(t *testing.T) {
	sw := New("sg-hv", WithoutEMC()) // no conntrack
	group := &acl.ACL{Stateful: true}
	group.Allow(acl.Entry{Src: netip.MustParsePrefix("10.0.0.0/8")})
	rules, err := group.Compile()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rules {
		sw.InstallRule(r)
	}
	d := sw.ProcessKey(1, tup("10.1.2.3", "172.16.0.1", 1, 2).Key(1))
	if d.Verdict.Verdict != flowtable.Deny {
		t.Fatal("stateful rules without conntrack must fail closed")
	}
}

func TestStatefulConntrackTableFullDrops(t *testing.T) {
	sw := statefulSwitch(t, conntrack.Config{MaxConns: 2})
	for i := 0; i < 2; i++ {
		d := sw.ProcessKey(1, tup("10.1.2.3", "172.16.0.1", uint16(1000+i), 443).Key(1))
		if d.Verdict.Verdict != flowtable.Allow {
			t.Fatalf("conn %d denied", i)
		}
	}
	// Third connection: commit fails, packet dropped.
	d := sw.ProcessKey(2, tup("10.1.2.3", "172.16.0.1", 3000, 443).Key(1))
	if d.Verdict.Verdict != flowtable.Deny {
		t.Fatal("commit beyond table limit not dropped")
	}
}

// TestStatefulAttackStillBites is the honest modelling claim: conntrack
// changes what the attack hurts, not whether it hurts. The covert stream
// still mints one mask per divergence combination, and while established
// flows hide behind the broad +est megaflow, connection *setup* (and all
// unanswered/denied traffic) scans the whole attacker ladder on the
// tracked pass.
func TestStatefulAttackStillBites(t *testing.T) {
	sw := statefulSwitch(t, conntrack.Config{})
	masksBefore := sw.Megaflow().NumMasks()

	// Covert stream: diverge from the whitelist values at every depth
	// combination — 8 ip depths (the /8 whitelist) x 16 port depths.
	for d1 := 0; d1 < 8; d1++ {
		for d2 := 0; d2 < 16; d2++ {
			k := tup("10.1.2.3", "172.16.0.1", 40000, 443).Key(1)
			k.Set(flow.FieldIPSrc, 0x0a000000^(1<<uint(31-d1)))
			k.Set(flow.FieldTPDst, uint64(443^(1<<uint(15-d2))))
			if d := sw.ProcessKey(1, k); d.Verdict.Verdict != flowtable.Deny {
				t.Fatalf("covert packet allowed at d1=%d d2=%d", d1, d2)
			}
		}
	}
	minted := sw.Megaflow().NumMasks() - masksBefore
	if minted < 120 { // 8x16 = 128, minus boundary merges
		t.Fatalf("stateful dataplane minted only %d masks", minted)
	}
	// A new (still unanswered) victim connection after the attack: its
	// +new megaflow installs behind the attacker's, so setup packets pay
	// the full scan on the tracked pass.
	fwd := tup("10.1.2.3", "172.16.0.1", 40000, 443).Key(1)
	sw.ProcessKey(2, fwd)
	d := sw.ProcessKey(3, fwd)
	if !d.Recirculated {
		t.Fatal("victim packet skipped recirculation")
	}
	if d.MasksScanned < minted {
		t.Fatalf("setup scanned %d masks; with %d attack masks the tracked pass should pay", d.MasksScanned, minted)
	}
	// Once established (reply seen), traffic rides ONE broad +est
	// megaflow: a second, unrelated established connection needs no new
	// upcall. (Whether that megaflow sits early or late in the scan is a
	// creation-time accident — here it was created post-attack, so even
	// established traffic scans the ladder until eviction reshuffles it;
	// see examples/securitygroup for the pre-attack-created case.)
	rev := tup("172.16.0.1", "10.1.2.3", 443, 40000).Key(2)
	sw.ProcessKey(4, rev)
	sw.ProcessKey(5, fwd) // fwd is now +est; creates/uses the est megaflow
	upcallsBefore := sw.Counters().Upcalls
	fwd2 := tup("10.9.9.9", "172.16.0.1", 41000, 443).Key(1)
	rev2 := tup("172.16.0.1", "10.9.9.9", 443, 41000).Key(2)
	sw.ProcessKey(6, fwd2) // +new setup (its combo megaflow exists or installs)
	sw.ProcessKey(7, rev2) // establish
	d = sw.ProcessKey(8, fwd2)
	if d.Verdict.Verdict != flowtable.Allow {
		t.Fatalf("second connection broken: %+v", d)
	}
	if got := sw.Counters().Upcalls - upcallsBefore; got > 2 {
		t.Fatalf("second established connection caused %d upcalls; the +est megaflow should be shared", got)
	}
}

// TestStatefulMegaflowsAreStateScoped: the cached megaflows carry ct_state
// bits, so a flow's verdict changing from +new to +est is a *different*
// cached entry, never a stale one.
func TestStatefulMegaflowsAreStateScoped(t *testing.T) {
	sw := statefulSwitch(t, conntrack.Config{})
	fwd := tup("10.1.2.3", "172.16.0.1", 40000, 443)
	rev := tup("172.16.0.1", "10.1.2.3", 443, 40000)
	sw.ProcessKey(1, fwd.Key(1)) // +new, committed
	sw.ProcessKey(2, rev.Key(2)) // reply -> established
	sw.ProcessKey(3, fwd.Key(1)) // now +est
	seen := map[uint64]bool{}
	for _, e := range sw.Megaflow().Entries() {
		ctMask := flow.FieldByID(flow.FieldCTState).GetMask(&e.Match.Mask)
		if ctMask != 0 {
			seen[e.Match.Key.Get(flow.FieldCTState)] = true
		}
	}
	// At least the untracked-dispatch, +new and +est shapes must coexist.
	if len(seen) < 3 {
		t.Fatalf("ct_state-scoped megaflow shapes = %d, want >= 3 (%v)", len(seen), seen)
	}
}

func TestStatefulRevalidatorExpiresConns(t *testing.T) {
	sw := statefulSwitch(t, conntrack.Config{IdleTimeout: 5})
	sw.ProcessKey(1, tup("10.1.2.3", "172.16.0.1", 40000, 443).Key(1))
	if sw.Conntrack().Len() != 1 {
		t.Fatal("precondition")
	}
	sw.RunRevalidator(100)
	if sw.Conntrack().Len() != 0 {
		t.Fatal("idle connection survived the revalidator")
	}
}
