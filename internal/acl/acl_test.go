package acl

import (
	"net/netip"
	"strings"
	"testing"

	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

func TestCompilePaperACL(t *testing.T) {
	// Fig. 2a: allow from 10.0.0.0/8, deny everything else.
	a := (&ACL{Comment: "fig2a"}).Allow(Entry{Src: netip.MustParsePrefix("10.0.0.0/8")})
	rules, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("rules = %d, want 2", len(rules))
	}
	r := rules[0]
	if r.Action.Verdict != flowtable.Allow || r.Priority != EntryPriority {
		t.Errorf("allow rule: %v", r)
	}
	if got := r.Match.Key.Get(flow.FieldIPSrc); got != 0x0a000000 {
		t.Errorf("ip_src = %#x", got)
	}
	if plen, ok := r.Match.Mask.PrefixLen(flow.FieldIPSrc); plen != 8 || !ok {
		t.Errorf("prefix = %d,%v", plen, ok)
	}
	// eth_type pinned to IPv4 when an IP constraint is present.
	if got := r.Match.Key.Get(flow.FieldEthType); got != flow.EthTypeIPv4 {
		t.Errorf("eth_type = %#x", got)
	}
	deny := rules[1]
	if deny.Action.Verdict != flowtable.Deny || !deny.Match.Mask.IsZero() || deny.Priority != DenyPriority {
		t.Errorf("default deny: %v", deny)
	}
}

func TestCompileExactHostAndPort(t *testing.T) {
	a := (&ACL{}).Allow(Entry{
		Src:     netip.MustParsePrefix("10.0.0.1/32"),
		Proto:   6,
		DstPort: Port(80),
	})
	rules, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	m := rules[0].Match
	if plen, _ := m.Mask.PrefixLen(flow.FieldIPSrc); plen != 32 {
		t.Errorf("ip_src plen = %d", plen)
	}
	if plen, _ := m.Mask.PrefixLen(flow.FieldTPDst); plen != 16 {
		t.Errorf("tp_dst plen = %d", plen)
	}
	if got := m.Key.Get(flow.FieldIPProto); got != 6 {
		t.Errorf("proto = %d", got)
	}
}

func TestCompileDstPrefix(t *testing.T) {
	a := (&ACL{}).Allow(Entry{Dst: netip.MustParsePrefix("192.168.0.0/16")})
	rules, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if plen, _ := rules[0].Match.Mask.PrefixLen(flow.FieldIPDst); plen != 16 {
		t.Errorf("ip_dst plen = %d", plen)
	}
}

func TestCompileNormalizesHostBits(t *testing.T) {
	a := (&ACL{}).Allow(Entry{Src: netip.MustParsePrefix("10.9.9.9/8")})
	rules, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if got := rules[0].Match.Key.Get(flow.FieldIPSrc); got != 0x0a000000 {
		t.Errorf("host bits not masked: %#x", got)
	}
}

func TestPortRangeBlocks(t *testing.T) {
	cases := []struct {
		from, to uint16
		want     int // number of prefix blocks
	}{
		{80, 80, 1},      // exact
		{0, 65535, 1},    // full range = zero-length prefix
		{1024, 2047, 1},  // aligned power of two
		{1024, 65535, 6}, // 1024-2047,2048-4095,...,32768-65535
		{1, 65534, 30},   // worst case: 2*(16-1)
		{1000, 1000, 1},
	}
	for _, c := range cases {
		blocks := PortRange(c.from, c.to).blocks()
		if len(blocks) != c.want {
			t.Errorf("range %d-%d: %d blocks, want %d (%v)", c.from, c.to, len(blocks), c.want, blocks)
		}
		// Every port in range must be covered exactly once.
		covered := map[uint16]int{}
		for _, b := range blocks {
			span := 1 << (16 - b.plen)
			for p := 0; p < span; p++ {
				covered[uint16(b.value)+uint16(p)]++
			}
		}
		for p := int(c.from); p <= int(c.to); p++ {
			if covered[uint16(p)] != 1 {
				t.Fatalf("range %d-%d: port %d covered %d times", c.from, c.to, p, covered[uint16(p)])
			}
		}
		if len(covered) != int(c.to)-int(c.from)+1 {
			t.Fatalf("range %d-%d: covered %d ports", c.from, c.to, len(covered))
		}
	}
}

func TestCompilePortRangeCrossProduct(t *testing.T) {
	a := (&ACL{}).Allow(Entry{
		Proto:   17,
		SrcPort: PortRange(1024, 2047), // 1 block
		DstPort: PortRange(80, 81),     // 1 block (aligned pair)
	})
	rules, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 { // 1x1 + default deny
		t.Fatalf("rules = %d", len(rules))
	}
	if plen, _ := rules[0].Match.Mask.PrefixLen(flow.FieldTPDst); plen != 15 {
		t.Errorf("tp_dst plen = %d, want 15", plen)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []*ACL{
		(&ACL{}).Allow(Entry{ // mixed address families
			Src: netip.MustParsePrefix("10.0.0.0/8"),
			Dst: netip.MustParsePrefix("2001:db8::/64"),
		}),
		(&ACL{}).Allow(Entry{Proto: 1, DstPort: Port(80)}),                   // ports on ICMP
		(&ACL{}).Allow(Entry{SrcPort: PortMatch{From: 9, To: 3, set: true}}), // inverted
	}
	for i, a := range cases {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid ACL", i)
		}
		if _, err := a.Compile(); err == nil {
			t.Errorf("case %d: Compile accepted invalid ACL", i)
		}
	}
}

func TestCompileIPv6Prefixes(t *testing.T) {
	cases := []struct {
		cidr           string
		wantHiPlen     int
		wantLoPlen     int
		wantHi, wantLo uint64
	}{
		{"2001:db8::/32", 32, 0, 0x2001_0db8_0000_0000, 0},
		{"2001:db8:0:1::/64", 64, 0, 0x2001_0db8_0000_0001, 0},
		{"2001:db8::1:0:0/96", 64, 32, 0x2001_0db8_0000_0000, 0x0000_0001_0000_0000},
		{"2001:db8::42/128", 64, 64, 0x2001_0db8_0000_0000, 0x42},
	}
	for _, c := range cases {
		a := (&ACL{}).Allow(Entry{Src: netip.MustParsePrefix(c.cidr)})
		rules, err := a.Compile()
		if err != nil {
			t.Fatalf("%s: %v", c.cidr, err)
		}
		m := rules[0].Match
		if got := m.Key.Get(flow.FieldEthType); got != flow.EthTypeIPv6 {
			t.Errorf("%s: eth_type = %#x", c.cidr, got)
		}
		if plen, ok := m.Mask.PrefixLen(flow.FieldIPv6SrcHi); plen != c.wantHiPlen || !ok {
			t.Errorf("%s: hi plen = %d,%v want %d", c.cidr, plen, ok, c.wantHiPlen)
		}
		if plen, ok := m.Mask.PrefixLen(flow.FieldIPv6SrcLo); plen != c.wantLoPlen || !ok {
			t.Errorf("%s: lo plen = %d,%v want %d", c.cidr, plen, ok, c.wantLoPlen)
		}
		if got := m.Key.Get(flow.FieldIPv6SrcHi); got != c.wantHi {
			t.Errorf("%s: hi = %#x want %#x", c.cidr, got, c.wantHi)
		}
		if got := m.Key.Get(flow.FieldIPv6SrcLo); got != c.wantLo {
			t.Errorf("%s: lo = %#x want %#x", c.cidr, got, c.wantLo)
		}
	}
}

func TestCompileIPv6RulesClassify(t *testing.T) {
	// End to end: an IPv6 whitelist admits the right packets.
	a := (&ACL{}).Allow(Entry{Src: netip.MustParsePrefix("2001:db8::/32"), Proto: 17, DstPort: Port(53)})
	rules, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var tbl flowtable.Table
	for i := range rules {
		tbl.Insert(rules[i])
	}
	in := flow.FiveTuple{
		Src: netip.MustParseAddr("2001:db8::99"), Dst: netip.MustParseAddr("2001:db8::1"),
		Proto: 17, SrcPort: 1234, DstPort: 53,
	}.Key(1)
	if r := tbl.Lookup(in); r == nil || r.Action.Verdict != flowtable.Allow {
		t.Errorf("whitelisted v6 flow denied: %v", r)
	}
	out := flow.FiveTuple{
		Src: netip.MustParseAddr("2a00::1"), Dst: netip.MustParseAddr("2001:db8::1"),
		Proto: 17, SrcPort: 1234, DstPort: 53,
	}.Key(1)
	if r := tbl.Lookup(out); r == nil || r.Action.Verdict != flowtable.Deny {
		t.Errorf("non-whitelisted v6 source allowed: %v", r)
	}
}

func TestDenyEntriesCompile(t *testing.T) {
	a := (&ACL{}).
		Deny(Entry{Src: netip.MustParsePrefix("10.66.0.0/16")}).
		Allow(Entry{Src: netip.MustParsePrefix("10.0.0.0/8")})
	rules, err := a.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Action.Verdict != flowtable.Deny || rules[1].Action.Verdict != flowtable.Allow {
		t.Errorf("verdict order wrong: %v %v", rules[0], rules[1])
	}
	// Equal priority: first-added (the deny exception) wins in a table.
	if rules[0].Priority != rules[1].Priority {
		t.Errorf("priorities differ: %d vs %d", rules[0].Priority, rules[1].Priority)
	}
}

func TestParseRoundTrip(t *testing.T) {
	text := `
# the paper's two-rule attack ACL
allow src=10.0.0.1
allow dport=80 proto=tcp
deny *
`
	a, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != 2 {
		t.Fatalf("entries = %d", len(a.Entries))
	}
	if a.Entries[0].Src.Bits() != 32 {
		t.Errorf("bare address should parse as /32, got /%d", a.Entries[0].Src.Bits())
	}
	if a.Entries[1].Proto != 6 || !a.Entries[1].DstPort.Exact() {
		t.Errorf("entry 1: %+v", a.Entries[1])
	}
	// Round trip through String and Parse again.
	b, err := Parse(a.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, a.String())
	}
	if len(b.Entries) != len(a.Entries) {
		t.Errorf("round trip changed entry count")
	}
}

func TestParseRanges(t *testing.T) {
	a, err := Parse("allow sport=1000-2000 proto=udp")
	if err != nil {
		t.Fatal(err)
	}
	e := a.Entries[0]
	if e.SrcPort.From != 1000 || e.SrcPort.To != 2000 || e.Proto != 17 {
		t.Errorf("entry: %+v", e)
	}
}

func TestParseErrors(t *testing.T) {
	for _, text := range []string{
		"permit src=10.0.0.0/8", // unknown verb
		"allow source=10.0.0.0", // unknown key
		"allow src=10.0.0.0/33", // bad prefix
		"allow dport=70000",     // port overflow
		"allow dport=80-x",      // bad range
		"allow proto=banana",    // bad proto
		"allow src",             // token without =
	} {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded", text)
		}
	}
}

func TestStringFormat(t *testing.T) {
	a := (&ACL{}).Allow(Entry{
		Src:     netip.MustParsePrefix("10.0.0.0/8"),
		DstPort: Port(80),
	})
	got := a.String()
	if !strings.Contains(got, "allow src=10.0.0.0/8 dport=80") || !strings.Contains(got, "deny *") {
		t.Errorf("String() = %q", got)
	}
}

func TestEntryStringCatchAll(t *testing.T) {
	e := Entry{Action: flowtable.Allow}
	if got := e.String(); got != "allow *" {
		t.Errorf("String() = %q", got)
	}
}
