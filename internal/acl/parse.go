package acl

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// Parse reads the CLI/text form of an ACL: one entry per line,
//
//	allow src=10.0.0.0/8 dport=80
//	allow sport=1000-2000 proto=tcp
//	deny src=10.66.0.0/16
//	deny *
//
// Lines starting with '#' and blank lines are ignored. A trailing "deny *"
// is accepted and ignored (the default deny is implicit). Keys: src, dst,
// proto (number or tcp/udp/icmp), sport, dport (port or from-to range).
func Parse(text string) (*ACL, error) {
	a := &ACL{}
	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fieldsStr := strings.Fields(line)
		verb := fieldsStr[0]
		var e Entry
		switch verb {
		case "allow":
		case "deny":
			// A bare "deny" or "deny *" is the implicit default deny, not
			// an entry of its own.
			if len(fieldsStr) == 1 || len(fieldsStr) == 2 && fieldsStr[1] == "*" {
				continue
			}
		default:
			return nil, fmt.Errorf("line %d: unknown verb %q", lineNo+1, verb)
		}
		for _, tok := range fieldsStr[1:] {
			if tok == "*" {
				continue
			}
			k, v, ok := strings.Cut(tok, "=")
			if !ok {
				return nil, fmt.Errorf("line %d: bad token %q", lineNo+1, tok)
			}
			if err := applyToken(&e, k, v); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
			}
		}
		if verb == "allow" {
			a.Allow(e)
		} else {
			a.Deny(e)
		}
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

func applyToken(e *Entry, k, v string) error {
	switch k {
	case "src", "dst":
		p, err := parseCIDR(v)
		if err != nil {
			return fmt.Errorf("%s: %v", k, err)
		}
		if k == "src" {
			e.Src = p
		} else {
			e.Dst = p
		}
	case "proto":
		switch strings.ToLower(v) {
		case "tcp":
			e.Proto = 6
		case "udp":
			e.Proto = 17
		case "icmp":
			e.Proto = 1
		default:
			n, err := strconv.ParseUint(v, 10, 8)
			if err != nil {
				return fmt.Errorf("proto: %v", err)
			}
			e.Proto = uint8(n)
		}
	case "sport", "dport":
		pm, err := parsePorts(v)
		if err != nil {
			return fmt.Errorf("%s: %v", k, err)
		}
		if k == "sport" {
			e.SrcPort = pm
		} else {
			e.DstPort = pm
		}
	default:
		return fmt.Errorf("unknown key %q", k)
	}
	return nil
}

func parseCIDR(v string) (netip.Prefix, error) {
	if !strings.Contains(v, "/") {
		addr, err := netip.ParseAddr(v)
		if err != nil {
			return netip.Prefix{}, err
		}
		return netip.PrefixFrom(addr, addr.BitLen()), nil
	}
	return netip.ParsePrefix(v)
}

func parsePorts(v string) (PortMatch, error) {
	if from, to, ok := strings.Cut(v, "-"); ok {
		f, err := strconv.ParseUint(from, 10, 16)
		if err != nil {
			return PortMatch{}, err
		}
		t, err := strconv.ParseUint(to, 10, 16)
		if err != nil {
			return PortMatch{}, err
		}
		return PortRange(uint16(f), uint16(t)), nil
	}
	p, err := strconv.ParseUint(v, 10, 16)
	if err != nil {
		return PortMatch{}, err
	}
	return Port(uint16(p)), nil
}
