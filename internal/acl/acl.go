// Package acl models the tenant-facing access-control lists a cloud
// management system accepts — "Whitelist + Default-Deny type of ACLs"
// operating on the IP 5-tuple, per the paper — and compiles them to the
// wildcard flow rules the hypervisor switch evaluates.
//
// An ACL is an ordered list of whitelist entries plus an implicit
// default-deny. Compilation preserves the paper's precedence model: all
// entries share one priority, so the first-added rule wins on overlap.
package acl

import (
	"fmt"
	"net/netip"
	"strings"

	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// PortMatch matches a transport port: nothing (Any), one port (exact), or
// an inclusive range. Ranges compile to multiple prefix-masked rules (the
// standard range-to-prefix decomposition), exactly the transformation a
// CMS plugin performs for "endPort" style policies.
type PortMatch struct {
	From, To uint16 // inclusive; zero value means any
	set      bool
}

// Port matches exactly p.
func Port(p uint16) PortMatch { return PortMatch{From: p, To: p, set: true} }

// PortRange matches from..to inclusive.
func PortRange(from, to uint16) PortMatch { return PortMatch{From: from, To: to, set: true} }

// Any reports whether the match is unconstrained.
func (p PortMatch) Any() bool { return !p.set }

// Exact reports whether the match is a single port.
func (p PortMatch) Exact() bool { return p.set && p.From == p.To }

func (p PortMatch) String() string {
	switch {
	case !p.set:
		return "*"
	case p.From == p.To:
		return fmt.Sprintf("%d", p.From)
	default:
		return fmt.Sprintf("%d-%d", p.From, p.To)
	}
}

// Entry is one whitelist line: every set constraint must hold.
type Entry struct {
	Src, Dst         netip.Prefix // zero value: any
	Proto            uint8        // 0: any IP protocol
	SrcPort, DstPort PortMatch
	Action           flowtable.Verdict // Allow for whitelists; Deny entries express exceptions
	Comment          string
}

func (e Entry) String() string {
	var parts []string
	verb := "allow"
	if e.Action == flowtable.Deny {
		verb = "deny"
	}
	if e.Src.IsValid() {
		parts = append(parts, "src="+e.Src.String())
	}
	if e.Dst.IsValid() {
		parts = append(parts, "dst="+e.Dst.String())
	}
	if e.Proto != 0 {
		parts = append(parts, fmt.Sprintf("proto=%d", e.Proto))
	}
	if !e.SrcPort.Any() {
		parts = append(parts, "sport="+e.SrcPort.String())
	}
	if !e.DstPort.Any() {
		parts = append(parts, "dport="+e.DstPort.String())
	}
	if len(parts) == 0 {
		parts = append(parts, "*")
	}
	return verb + " " + strings.Join(parts, " ")
}

// ACL is an ordered whitelist with implicit default deny.
type ACL struct {
	Entries []Entry
	Comment string
	// Stateful compiles the ACL as a connection-tracking security group
	// (the OpenStack flavour): untracked packets are sent through
	// conntrack and re-classified; established/reply traffic is allowed
	// regardless of the whitelist; whitelist entries admit and commit
	// +new connections. Requires a dataplane with conntrack enabled.
	Stateful bool
}

// Allow appends an allow entry and returns the ACL for chaining.
func (a *ACL) Allow(e Entry) *ACL {
	e.Action = flowtable.Allow
	a.Entries = append(a.Entries, e)
	return a
}

// Deny appends an explicit deny entry.
func (a *ACL) Deny(e Entry) *ACL {
	e.Action = flowtable.Deny
	a.Entries = append(a.Entries, e)
	return a
}

// Validate rejects entries this dataplane cannot express.
func (a *ACL) Validate() error {
	for i, e := range a.Entries {
		if e.Src.IsValid() && e.Dst.IsValid() &&
			e.Src.Addr().Unmap().Is4() != e.Dst.Addr().Unmap().Is4() {
			return fmt.Errorf("acl entry %d: mixed IPv4/IPv6 src and dst (%v, %v)", i, e.Src, e.Dst)
		}
		portsUsed := !e.SrcPort.Any() || !e.DstPort.Any()
		if portsUsed && e.Proto != 0 && e.Proto != uint8(flow.ProtoTCP) && e.Proto != uint8(flow.ProtoUDP) {
			return fmt.Errorf("acl entry %d: ports require TCP or UDP, got proto %d", i, e.Proto)
		}
		if !e.SrcPort.Any() && e.SrcPort.From > e.SrcPort.To {
			return fmt.Errorf("acl entry %d: inverted sport range %s", i, e.SrcPort)
		}
		if !e.DstPort.Any() && e.DstPort.From > e.DstPort.To {
			return fmt.Errorf("acl entry %d: inverted dport range %s", i, e.DstPort)
		}
	}
	return nil
}

// Compiled rule priorities: conntrack dispatch above the stateful
// shortcut, whitelist entries below both, default deny last.
const (
	RecircPriority      = 300
	EstablishedPriority = 200
	EntryPriority       = 100
	DenyPriority        = 0
)

// Compile lowers the ACL to flow rules, appending the implicit default
// deny. Entries with port ranges expand to one rule per (sport, dport)
// prefix-block combination.
func (a *ACL) Compile() ([]flowtable.Rule, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	var rules []flowtable.Rule
	if a.Stateful {
		// Untracked -> ct(recirc). Mask only the +trk bit: the rule must
		// match every packet that has not been through conntrack yet.
		var untracked flow.Match
		flow.FieldByID(flow.FieldCTState).SetMask(&untracked.Mask, flow.CTTracked)
		rules = append(rules, flowtable.Rule{
			Match:    untracked,
			Priority: RecircPriority,
			Action:   flowtable.Action{Recirc: true},
			Comment:  "untracked: send to conntrack",
		})
		// +trk+est -> allow, the stateful shortcut for return traffic.
		var est flow.Match
		flow.FieldByID(flow.FieldCTState).SetMask(&est.Mask, flow.CTTracked|flow.CTEstablished)
		est.Key.Set(flow.FieldCTState, flow.CTTracked|flow.CTEstablished)
		rules = append(rules, flowtable.Rule{
			Match:    est,
			Priority: EstablishedPriority,
			Action:   flowtable.Action{Verdict: flowtable.Allow},
			Comment:  "established/reply: allow",
		})
	}
	for i, e := range a.Entries {
		base := flow.Match{}
		if e.Src.IsValid() {
			applyCIDR(&base, e.Src, flow.FieldIPSrc, flow.FieldIPv6SrcHi, flow.FieldIPv6SrcLo)
		}
		if e.Dst.IsValid() {
			applyCIDR(&base, e.Dst, flow.FieldIPDst, flow.FieldIPv6DstHi, flow.FieldIPv6DstLo)
		}
		if e.Proto != 0 {
			base.Key.Set(flow.FieldIPProto, uint64(e.Proto))
			base.Mask.SetExact(flow.FieldIPProto)
			// Unless an address constraint already pinned the family, a
			// bare-proto entry applies to IPv4 — the 5-tuple family of
			// the paper's ACLs.
			if f := flow.FieldByID(flow.FieldEthType); f.GetMask(&base.Mask) == 0 {
				base.Key.Set(flow.FieldEthType, flow.EthTypeIPv4)
				base.Mask.SetExact(flow.FieldEthType)
			}
		}
		comment := e.Comment
		if comment == "" {
			comment = fmt.Sprintf("%s entry %d", a.Comment, i)
		}
		for _, sp := range e.SrcPort.blocks() {
			for _, dp := range e.DstPort.blocks() {
				m := base
				sp.apply(&m, flow.FieldTPSrc)
				dp.apply(&m, flow.FieldTPDst)
				action := flowtable.Action{Verdict: e.Action}
				if a.Stateful {
					// Whitelist entries admit only +new tracked packets
					// and commit the connection.
					m.Key.Set(flow.FieldCTState, flow.CTTracked|flow.CTNew)
					flow.FieldByID(flow.FieldCTState).SetMask(&m.Mask, flow.CTTracked|flow.CTNew)
					if e.Action == flowtable.Allow {
						action.Commit = true
					}
				}
				m.Normalize()
				rules = append(rules, flowtable.Rule{
					Match:    m,
					Priority: EntryPriority,
					Action:   action,
					Comment:  comment,
				})
			}
		}
	}
	rules = append(rules, flowtable.Rule{
		Priority: DenyPriority,
		Action:   flowtable.Action{Verdict: flowtable.Deny},
		Comment:  "default deny",
	})
	return rules, nil
}

// applyCIDR lowers one CIDR constraint onto a match, dispatching between
// the IPv4 field and the split 128-bit IPv6 fields, and pinning eth_type.
func applyCIDR(m *flow.Match, p netip.Prefix, v4Field, v6Hi, v6Lo flow.FieldID) {
	p = p.Masked()
	if p.Addr().Unmap().Is4() {
		m.Key.Set(v4Field, flow.V4(p.Addr()))
		m.Mask.SetPrefix(v4Field, p.Bits())
		m.Key.Set(flow.FieldEthType, flow.EthTypeIPv4)
		m.Mask.SetExact(flow.FieldEthType)
		return
	}
	a := p.Addr().As16()
	hi := be64(a[:8])
	lo := be64(a[8:])
	plen := p.Bits()
	if plen > 64 {
		m.Key.Set(v6Hi, hi)
		m.Mask.SetPrefix(v6Hi, 64)
		m.Key.Set(v6Lo, lo)
		m.Mask.SetPrefix(v6Lo, plen-64)
	} else {
		m.Key.Set(v6Hi, hi)
		m.Mask.SetPrefix(v6Hi, plen)
	}
	m.Key.Set(flow.FieldEthType, flow.EthTypeIPv6)
	m.Mask.SetExact(flow.FieldEthType)
}

func be64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}

// block is one prefix block of a port range: value/plen.
type block struct {
	value uint64
	plen  int
	any   bool
}

func (b block) apply(m *flow.Match, f flow.FieldID) {
	if b.any {
		return
	}
	m.Key.Set(f, b.value)
	m.Mask.SetPrefix(f, b.plen)
}

// blocks decomposes the port match into maximal prefix blocks, the
// standard technique for expressing ranges in TCAM/wildcard matchers: at
// most 2*16-2 blocks for any 16-bit range.
func (p PortMatch) blocks() []block {
	if !p.set {
		return []block{{any: true}}
	}
	var out []block
	lo, hi := uint32(p.From), uint32(p.To)
	for lo <= hi {
		// Largest power-of-two block aligned at lo that fits in [lo, hi].
		size := uint32(1)
		for lo&(size<<1-1) == 0 && lo+(size<<1)-1 <= hi && size<<1 <= 1<<16 {
			size <<= 1
		}
		plen := 16
		for s := size; s > 1; s >>= 1 {
			plen--
		}
		out = append(out, block{value: uint64(lo), plen: plen})
		lo += size
		if lo == 0 { // wrapped past 65535
			break
		}
	}
	return out
}

func (a *ACL) String() string {
	var b strings.Builder
	for _, e := range a.Entries {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	b.WriteString("deny *\n")
	return b.String()
}
