package acl

import (
	"net/netip"
	"testing"

	"policyinject/internal/flow"
	"policyinject/internal/flowtable"
)

// FuzzParse: the ACL text parser must never panic, and everything it
// accepts must compile and round-trip through String() -> Parse().
func FuzzParse(f *testing.F) {
	f.Add("allow src=10.0.0.0/8\ndeny *")
	f.Add("allow dport=80 proto=tcp")
	f.Add("allow sport=1000-2000 proto=udp")
	f.Add("allow src=2001:db8::/32")
	f.Add("# comment\n\nallow *")
	f.Add("deny src=10.66.0.0/16\nallow src=10.0.0.0/8")
	f.Fuzz(func(t *testing.T, text string) {
		a, err := Parse(text)
		if err != nil {
			return
		}
		rules, err := a.Compile()
		if err != nil {
			t.Fatalf("accepted ACL failed to compile: %v\n%s", err, text)
		}
		if len(rules) != ruleCount(a)+1 {
			t.Fatalf("rule count %d for %d entries", len(rules), len(a.Entries))
		}
		b, err := Parse(a.String())
		if err != nil {
			t.Fatalf("round trip parse failed: %v\n%q", err, a.String())
		}
		if len(b.Entries) != len(a.Entries) {
			t.Fatalf("round trip changed entries %d -> %d", len(a.Entries), len(b.Entries))
		}
	})
}

// ruleCount is the expected compiled rule count before the default deny:
// the sum over entries of their port-block cross products.
func ruleCount(a *ACL) int {
	n := 0
	for _, e := range a.Entries {
		n += len(e.SrcPort.blocks()) * len(e.DstPort.blocks())
	}
	return n
}

// FuzzCompileVerdicts: for arbitrary single-entry ACLs (driven by raw
// integers), compiled-rule semantics must agree with the entry's intent on
// the entry's own canonical packet.
func FuzzCompileVerdicts(f *testing.F) {
	f.Add(uint32(0x0a000000), uint8(8), uint16(443), true)
	f.Add(uint32(0xc0a80000), uint8(16), uint16(0), false)
	f.Fuzz(func(t *testing.T, ip uint32, plenRaw uint8, port uint16, withPort bool) {
		plen := int(plenRaw % 33)
		addr := netip.AddrFrom4([4]byte{byte(ip >> 24), byte(ip >> 16), byte(ip >> 8), byte(ip)})
		e := Entry{Src: netip.PrefixFrom(addr, plen)}
		if withPort {
			e.Proto = 6
			e.DstPort = Port(port)
		}
		a := (&ACL{}).Allow(e)
		rules, err := a.Compile()
		if err != nil {
			t.Fatal(err)
		}
		var tbl flowtable.Table
		for i := range rules {
			tbl.Insert(rules[i])
		}
		// A canonical packet inside the whitelist must be allowed.
		var k flow.Key
		k.Set(flow.FieldEthType, flow.EthTypeIPv4)
		k.Set(flow.FieldIPSrc, uint64(ip))
		if withPort {
			k.Set(flow.FieldIPProto, 6)
			k.Set(flow.FieldTPDst, uint64(port))
		}
		r := tbl.Lookup(k)
		if r == nil || r.Action.Verdict != flowtable.Allow {
			t.Fatalf("canonical packet denied (ip=%#x plen=%d port=%d withPort=%v): %v",
				ip, plen, port, withPort, r)
		}
	})
}
