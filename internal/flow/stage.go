package flow

// Stage identifies one segment of the staged subtable lookup, mirroring
// the metadata -> L2 -> L3 -> L4 staging of Open vSwitch's classifier
// (lib/classifier's subtable indices). A subtable's mask is split along
// stage boundaries and the flow hash is computed incrementally stage by
// stage, so a lookup can reject a subtable at the first stage whose
// partial hash matches no resident entry — without ever masking or
// hashing the rest of the key.
//
// Stages are defined over the Key word layout, not individual fields:
//
//	StageMeta: word 0          (in_port, eth_type, vlan_tci)
//	StageL2:   words 1-2       (eth_src/dst, ip_proto, ip_tos, tcp_flags, ip_frag)
//	StageL3:   words 3, 5-8    (IPv4 and IPv6 addresses)
//	StageL4:   words 4, 9      (L4 ports, ICMP, ARP, ct_state)
//
// Every Key word belongs to exactly one stage, so the chain of all four
// stage hashes covers the whole key.
type Stage uint8

const (
	StageMeta Stage = iota
	StageL2
	StageL3
	StageL4

	// NumStages is the number of lookup stages.
	NumStages
)

func (s Stage) String() string {
	switch s {
	case StageMeta:
		return "meta"
	case StageL2:
		return "l2"
	case StageL3:
		return "l3"
	case StageL4:
		return "l4"
	default:
		return "invalid"
	}
}

// stageWords maps each stage to the Key/Mask words it covers. The word
// sets partition [0, Words).
var stageWords = [NumStages][]int{
	StageMeta: {0},
	StageL2:   {1, 2},
	StageL3:   {3, 5, 6, 7, 8},
	StageL4:   {4, 9},
}

// StageWords returns the Key word indices stage s covers. The returned
// slice is shared; callers must not modify it.
func (s Stage) StageWords() []int { return stageWords[s] }

// StageUsed reports whether the mask selects any bit in stage s.
func (m *Mask) StageUsed(s Stage) bool {
	for _, w := range stageWords[s] {
		if m[w] != 0 {
			return true
		}
	}
	return false
}

// LastStage returns the highest stage with any selected bit, and false
// when the mask selects nothing at all (the catch-all subtable).
func (m *Mask) LastStage() (Stage, bool) {
	for s := NumStages; s > 0; s-- {
		if m.StageUsed(s - 1) {
			return s - 1, true
		}
	}
	return StageMeta, false
}

// StageHashSeed is the initial accumulator of the incremental stage hash
// chain (the FNV-1a offset basis, matching Key.Hash's accumulator).
const StageHashSeed uint64 = 14695981039346656037

// HashStage folds stage s of k, masked by m, into the running hash h and
// returns the new accumulator. Chaining HashStage over a subtable's used
// stages in ascending order yields the incremental per-stage hashes of
// the staged lookup: the hash after stage s depends only on the masked
// key bits of stages <= s, so two keys agreeing on those bits share every
// prefix of the chain. No finaliser is applied — the per-stage hashes
// index Go maps, which re-hash the uint64 themselves.
func (k *Key) HashStage(h uint64, m *Mask, s Stage) uint64 {
	const prime64 = 1099511628211
	for _, w := range stageWords[s] {
		x := k[w] & m[w]
		for i := 0; i < 8; i++ {
			h ^= x & 0xff
			h *= prime64
			x >>= 8
		}
	}
	return h
}
