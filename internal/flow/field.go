// Package flow defines the canonical flow key and mask representation used
// throughout the dataplane: a fixed array of 64-bit words with a typed field
// registry mapping protocol header fields onto bit ranges.
//
// The representation mirrors Open vSwitch's struct flow / flow_wildcards
// pair: a Key holds the parsed header fields of one packet, a Mask selects
// the bits a classifier entry cares about, and a Match is a (Key, Mask)
// pair with Key&Mask == Key. Keys and Masks are plain comparable arrays so
// they can be used directly as Go map keys, which is what the tuple-space
// search cache relies on.
//
// Bit numbering is MSB-first within each word: bit 0 of a field is its most
// significant bit. This makes prefix masks (the object of study of the
// policy-injection attack) a contiguous run of high bits, for any field.
package flow

import "fmt"

// Words is the number of 64-bit words in a Key or Mask.
//
// Layout (word: fields, MSB to LSB):
//
//	0: InPort(32) EthType(16) VLANTCI(16)
//	1: EthSrc(48) IPProto(8) IPTOS(8)
//	2: EthDst(48) TCPFlags(8) IPFrag(8)
//	3: IPSrc(32) IPDst(32)            (IPv4)
//	4: TPSrc(16) TPDst(16) ICMPType(8) ICMPCode(8) ARPOp(16)
//	5: IPv6SrcHi(64)   6: IPv6SrcLo(64)
//	7: IPv6DstHi(64)   8: IPv6DstLo(64)
//	9: CTState(8) pad(56)
const Words = 10

// FieldID enumerates every header field the dataplane can match on.
type FieldID uint8

// Field identifiers. The order is stable and part of the package API: it is
// used for canonical formatting and for indexing per-field prefix tries.
const (
	FieldInPort FieldID = iota
	FieldEthType
	FieldVLANTCI
	FieldEthSrc
	FieldIPProto
	FieldIPTOS
	FieldEthDst
	FieldTCPFlags
	FieldIPFrag
	FieldIPSrc
	FieldIPDst
	FieldTPSrc
	FieldTPDst
	FieldICMPType
	FieldICMPCode
	FieldARPOp
	FieldIPv6SrcHi
	FieldIPv6SrcLo
	FieldIPv6DstHi
	FieldIPv6DstLo
	FieldCTState

	// NumFields is the number of defined fields.
	NumFields
)

// CTState bit values (FieldCTState). They mirror the OVS ct_state flags
// the dataplane matches on after conntrack recirculation.
const (
	CTTracked     uint64 = 1 << 0 // +trk: the packet has been through conntrack
	CTNew         uint64 = 1 << 1 // +new: would create a new connection
	CTEstablished uint64 = 1 << 2 // +est: part of a seen-both-ways connection
	CTReply       uint64 = 1 << 3 // +rpl: flowing in the reply direction
	CTInvalid     uint64 = 1 << 4 // +inv: conntrack could not make sense of it
)

// Field describes where a header field lives inside a Key and how wide it
// is. A field never spans a word boundary (128-bit IPv6 addresses are split
// into explicit Hi/Lo fields).
type Field struct {
	ID   FieldID
	Name string // canonical short name, following ovs-fields(7) usage
	Word int    // word index within Key/Mask
	Off  int    // bit offset of the field MSB within the word (0 = word MSB)
	Bits int    // field width in bits, 1..64
}

// fields is the field registry, indexed by FieldID.
var fields = [NumFields]Field{
	FieldInPort:    {FieldInPort, "in_port", 0, 0, 32},
	FieldEthType:   {FieldEthType, "eth_type", 0, 32, 16},
	FieldVLANTCI:   {FieldVLANTCI, "vlan_tci", 0, 48, 16},
	FieldEthSrc:    {FieldEthSrc, "eth_src", 1, 0, 48},
	FieldIPProto:   {FieldIPProto, "ip_proto", 1, 48, 8},
	FieldIPTOS:     {FieldIPTOS, "ip_tos", 1, 56, 8},
	FieldEthDst:    {FieldEthDst, "eth_dst", 2, 0, 48},
	FieldTCPFlags:  {FieldTCPFlags, "tcp_flags", 2, 48, 8},
	FieldIPFrag:    {FieldIPFrag, "ip_frag", 2, 56, 8},
	FieldIPSrc:     {FieldIPSrc, "ip_src", 3, 0, 32},
	FieldIPDst:     {FieldIPDst, "ip_dst", 3, 32, 32},
	FieldTPSrc:     {FieldTPSrc, "tp_src", 4, 0, 16},
	FieldTPDst:     {FieldTPDst, "tp_dst", 4, 16, 16},
	FieldICMPType:  {FieldICMPType, "icmp_type", 4, 32, 8},
	FieldICMPCode:  {FieldICMPCode, "icmp_code", 4, 40, 8},
	FieldARPOp:     {FieldARPOp, "arp_op", 4, 48, 16},
	FieldIPv6SrcHi: {FieldIPv6SrcHi, "ipv6_src_hi", 5, 0, 64},
	FieldIPv6SrcLo: {FieldIPv6SrcLo, "ipv6_src_lo", 6, 0, 64},
	FieldIPv6DstHi: {FieldIPv6DstHi, "ipv6_dst_hi", 7, 0, 64},
	FieldIPv6DstLo: {FieldIPv6DstLo, "ipv6_dst_lo", 8, 0, 64},
	FieldCTState:   {FieldCTState, "ct_state", 9, 0, 8},
}

var fieldsByName = func() map[string]FieldID {
	m := make(map[string]FieldID, NumFields)
	for _, f := range fields {
		m[f.Name] = f.ID
	}
	return m
}()

// FieldByID returns the descriptor for id. It panics on an out-of-range id,
// which always indicates a programming error.
func FieldByID(id FieldID) Field {
	if id >= NumFields {
		//lint:allow hotpathalloc panic path, reached only on a programming error
		panic(fmt.Sprintf("flow: invalid field id %d", id))
	}
	return fields[id]
}

// FieldByName looks a field up by its canonical name (e.g. "ip_src").
func FieldByName(name string) (Field, bool) {
	id, ok := fieldsByName[name]
	if !ok {
		return Field{}, false
	}
	return fields[id], true
}

// AllFields returns the registry in FieldID order. The returned slice is a
// copy and may be modified by the caller.
func AllFields() []Field {
	out := make([]Field, NumFields)
	copy(out, fields[:])
	return out
}

// Name returns the canonical name of the field.
func (id FieldID) Name() string { return FieldByID(id).Name }

// String implements fmt.Stringer with the canonical field name.
func (id FieldID) String() string { return id.Name() }

// Bits returns the width of the field in bits.
func (id FieldID) Bits() int { return FieldByID(id).Bits }

// shift returns the left-shift that moves a field value into word position.
func (f Field) shift() uint { return uint(64 - f.Off - f.Bits) }

// valueMask returns the in-word mask covering the whole field.
func (f Field) valueMask() uint64 {
	if f.Bits == 64 {
		return ^uint64(0)
	}
	return ((uint64(1) << uint(f.Bits)) - 1) << f.shift()
}

// prefixMask returns the in-word mask covering the top nbits of the field.
// nbits is clamped to [0, f.Bits].
func (f Field) prefixMask(nbits int) uint64 {
	if nbits <= 0 {
		return 0
	}
	if nbits > f.Bits {
		nbits = f.Bits
	}
	m := ^uint64(0) << uint(64-nbits) // top nbits of a word
	return (m >> uint(f.Off)) & f.valueMask()
}

// Get extracts the field value from k, right-aligned.
func (f Field) Get(k *Key) uint64 {
	return (k[f.Word] & f.valueMask()) >> f.shift()
}

// Set stores the right-aligned value v into the field of k. Bits of v above
// the field width are discarded.
func (f Field) Set(k *Key, v uint64) {
	if f.Bits < 64 {
		v &= (uint64(1) << uint(f.Bits)) - 1
	}
	k[f.Word] = k[f.Word]&^f.valueMask() | v<<f.shift()
}

// GetMask returns the mask bits of the field in m, right-aligned.
func (f Field) GetMask(m *Mask) uint64 {
	return (m[f.Word] & f.valueMask()) >> f.shift()
}

// SetMask stores a right-aligned raw mask value into the field of m.
func (f Field) SetMask(m *Mask, v uint64) {
	if f.Bits < 64 {
		v &= (uint64(1) << uint(f.Bits)) - 1
	}
	m[f.Word] = m[f.Word]&^f.valueMask() | v<<f.shift()
}
