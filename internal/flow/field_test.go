package flow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFieldRegistryConsistent(t *testing.T) {
	seen := map[string]bool{}
	for id := FieldID(0); id < NumFields; id++ {
		f := FieldByID(id)
		if f.ID != id {
			t.Errorf("field %q: registry ID %d != index %d", f.Name, f.ID, id)
		}
		if f.Name == "" {
			t.Errorf("field %d has empty name", id)
		}
		if seen[f.Name] {
			t.Errorf("duplicate field name %q", f.Name)
		}
		seen[f.Name] = true
		if f.Word < 0 || f.Word >= Words {
			t.Errorf("field %q: word %d out of range", f.Name, f.Word)
		}
		if f.Bits < 1 || f.Bits > 64 {
			t.Errorf("field %q: bad width %d", f.Name, f.Bits)
		}
		if f.Off < 0 || f.Off+f.Bits > 64 {
			t.Errorf("field %q: spans word boundary (off %d bits %d)", f.Name, f.Off, f.Bits)
		}
	}
}

func TestFieldsDoNotOverlap(t *testing.T) {
	var occupied [Words]uint64
	for id := FieldID(0); id < NumFields; id++ {
		f := FieldByID(id)
		vm := f.valueMask()
		if occupied[f.Word]&vm != 0 {
			t.Errorf("field %q overlaps a previous field in word %d", f.Name, f.Word)
		}
		occupied[f.Word] |= vm
	}
}

func TestFieldByName(t *testing.T) {
	for id := FieldID(0); id < NumFields; id++ {
		want := FieldByID(id)
		got, ok := FieldByName(want.Name)
		if !ok || got.ID != id {
			t.Errorf("FieldByName(%q) = %+v, %v", want.Name, got, ok)
		}
	}
	if _, ok := FieldByName("no_such_field"); ok {
		t.Error("FieldByName accepted an unknown name")
	}
}

func TestFieldByIDPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FieldByID(NumFields) did not panic")
		}
	}()
	FieldByID(NumFields)
}

func TestSetGetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		var k Key
		want := map[FieldID]uint64{}
		for id := FieldID(0); id < NumFields; id++ {
			f := FieldByID(id)
			v := rng.Uint64()
			if f.Bits < 64 {
				v &= (1 << uint(f.Bits)) - 1
			}
			k.Set(id, v)
			want[id] = v
		}
		for id, w := range want {
			if got := k.Get(id); got != w {
				t.Fatalf("trial %d: field %s: got %#x want %#x", trial, id.Name(), got, w)
			}
		}
	}
}

func TestSetTruncatesWideValues(t *testing.T) {
	var k Key
	k.Set(FieldIPProto, 0x1ff) // 9 bits into an 8-bit field
	if got := k.Get(FieldIPProto); got != 0xff {
		t.Fatalf("got %#x, want 0xff", got)
	}
	// Neighbouring fields in the same word must be untouched.
	if got := k.Get(FieldEthSrc); got != 0 {
		t.Fatalf("eth_src corrupted: %#x", got)
	}
	if got := k.Get(FieldIPTOS); got != 0 {
		t.Fatalf("ip_tos corrupted: %#x", got)
	}
}

func TestPrefixMask(t *testing.T) {
	f := FieldByID(FieldIPSrc)
	cases := []struct {
		nbits int
		want  uint64 // right-aligned field mask
	}{
		{0, 0},
		{1, 0x80000000},
		{8, 0xff000000},
		{9, 0xff800000},
		{31, 0xfffffffe},
		{32, 0xffffffff},
		{40, 0xffffffff}, // clamped
		{-3, 0},          // clamped
	}
	for _, c := range cases {
		var m Mask
		m.SetPrefix(FieldIPSrc, c.nbits)
		if got := f.GetMask(&m); got != c.want {
			t.Errorf("SetPrefix(ip_src, %d): got %#x want %#x", c.nbits, got, c.want)
		}
	}
}

func TestPrefixLen(t *testing.T) {
	var m Mask
	m.SetPrefix(FieldIPSrc, 13)
	if n, ok := m.PrefixLen(FieldIPSrc); n != 13 || !ok {
		t.Errorf("PrefixLen = %d, %v; want 13, true", n, ok)
	}
	// A non-contiguous mask is not a prefix.
	var m2 Mask
	FieldByID(FieldIPSrc).SetMask(&m2, 0xff00ff00)
	if _, ok := m2.PrefixLen(FieldIPSrc); ok {
		t.Error("non-contiguous mask reported as prefix")
	}
	// Zero mask is the empty prefix.
	var m3 Mask
	if n, ok := m3.PrefixLen(FieldIPSrc); n != 0 || !ok {
		t.Errorf("zero mask: PrefixLen = %d, %v; want 0, true", n, ok)
	}
}

// Property: for every field, setting a prefix of n bits yields a mask with
// exactly n bits set, all within the field, forming a superset chain as n
// grows.
func TestPrefixMaskProperties(t *testing.T) {
	for id := FieldID(0); id < NumFields; id++ {
		f := FieldByID(id)
		var prev Mask
		for n := 0; n <= f.Bits; n++ {
			var m Mask
			m.SetPrefix(id, n)
			if got := m.Bits(); got != n {
				t.Fatalf("%s: prefix %d has %d bits set", f.Name, n, got)
			}
			if !prev.Subset(m) {
				t.Fatalf("%s: prefix %d not superset of prefix %d", f.Name, n, n-1)
			}
			if m[f.Word]&^f.valueMask() != 0 {
				t.Fatalf("%s: prefix mask leaks outside the field", f.Name)
			}
			prev = m
		}
	}
}

func TestMaskApplyIdempotent(t *testing.T) {
	prop := func(kw, mw [Words]uint64) bool {
		k, m := Key(kw), Mask(mw)
		once := m.Apply(k)
		return m.Apply(once) == once
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMaskUnionProperties(t *testing.T) {
	prop := func(aw, bw [Words]uint64) bool {
		a, b := Mask(aw), Mask(bw)
		u := a.Union(b)
		return a.Subset(u) && b.Subset(u) && u == b.Union(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestHashDistinguishesKeys(t *testing.T) {
	// Not a general collision test: just verifies single-bit flips change
	// the hash, the property TSS bucket spread depends on.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		var k Key
		for i := range k {
			k[i] = rng.Uint64()
		}
		h := k.Hash()
		w, b := rng.Intn(Words), uint(rng.Intn(64))
		k2 := k
		k2[w] ^= 1 << b
		if k2.Hash() == h {
			t.Fatalf("single-bit flip did not change hash (word %d bit %d)", w, b)
		}
	}
}
