package flow

import (
	"fmt"
	"net/netip"
)

// EtherType values the dataplane understands.
const (
	EthTypeIPv4 uint64 = 0x0800
	EthTypeARP  uint64 = 0x0806
	EthTypeVLAN uint64 = 0x8100
	EthTypeIPv6 uint64 = 0x86dd
)

// IP protocol numbers.
const (
	ProtoICMP   uint64 = 1
	ProtoTCP    uint64 = 6
	ProtoUDP    uint64 = 17
	ProtoICMPv6 uint64 = 58
)

// FiveTuple is the classic ACL matching unit: the IP source and destination
// address, the transport protocol and the two ports. It exists as a
// convenience bridge between human-level policy descriptions and Keys.
type FiveTuple struct {
	Src, Dst netip.Addr
	Proto    uint8
	SrcPort  uint16
	DstPort  uint16
}

// V4 converts an IPv4 netip.Addr to the 32-bit representation used in Keys.
// It panics when addr is not IPv4 (including IPv4-mapped IPv6); callers
// validate addresses at policy-admission time.
func V4(addr netip.Addr) uint64 {
	a := addr.Unmap()
	if !a.Is4() {
		panic(fmt.Sprintf("flow: %v is not an IPv4 address", addr))
	}
	b := a.As4()
	return uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
}

// V4Addr converts a key-encoded IPv4 value back to a netip.Addr.
func V4Addr(v uint64) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// Key builds the canonical flow key for the tuple arriving on inPort. The
// Ethernet addresses are left zero: ACL processing in this system is
// L3/L4-driven, exactly as in the paper's CMS-installed policies.
func (t FiveTuple) Key(inPort uint32) Key {
	var k Key
	k.Set(FieldInPort, uint64(inPort))
	k.Set(FieldIPProto, uint64(t.Proto))
	if t.Src.Unmap().Is4() {
		k.Set(FieldEthType, EthTypeIPv4)
		k.Set(FieldIPSrc, V4(t.Src))
		k.Set(FieldIPDst, V4(t.Dst))
	} else {
		k.Set(FieldEthType, EthTypeIPv6)
		s := t.Src.As16()
		d := t.Dst.As16()
		k.Set(FieldIPv6SrcHi, be64(s[:8]))
		k.Set(FieldIPv6SrcLo, be64(s[8:]))
		k.Set(FieldIPv6DstHi, be64(d[:8]))
		k.Set(FieldIPv6DstLo, be64(d[8:]))
	}
	switch uint64(t.Proto) {
	case ProtoTCP, ProtoUDP:
		k.Set(FieldTPSrc, uint64(t.SrcPort))
		k.Set(FieldTPDst, uint64(t.DstPort))
	case ProtoICMP, ProtoICMPv6:
		k.Set(FieldICMPType, uint64(t.SrcPort))
		k.Set(FieldICMPCode, uint64(t.DstPort))
	}
	return k
}

// Tuple extracts the five-tuple view of a key, dispatching on eth_type
// for the address family.
func (k Key) Tuple() FiveTuple {
	t := FiveTuple{
		Proto:   uint8(k.Get(FieldIPProto)),
		SrcPort: uint16(k.Get(FieldTPSrc)),
		DstPort: uint16(k.Get(FieldTPDst)),
	}
	if k.Get(FieldEthType) == EthTypeIPv6 {
		t.Src = v6Addr(k.Get(FieldIPv6SrcHi), k.Get(FieldIPv6SrcLo))
		t.Dst = v6Addr(k.Get(FieldIPv6DstHi), k.Get(FieldIPv6DstLo))
		return t
	}
	t.Src = V4Addr(k.Get(FieldIPSrc))
	t.Dst = V4Addr(k.Get(FieldIPDst))
	return t
}

// V6 splits an IPv6 address into the two 64-bit halves stored in Keys.
func V6(addr netip.Addr) (hi, lo uint64) {
	b := addr.As16()
	return be64(b[:8]), be64(b[8:])
}

func v6Addr(hi, lo uint64) netip.Addr {
	var b [16]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(hi >> uint(56-8*i))
		b[8+i] = byte(lo >> uint(56-8*i))
	}
	return netip.AddrFrom16(b)
}

func be64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
