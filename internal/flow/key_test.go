package flow

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

func TestMatchMatches(t *testing.T) {
	var m Match
	m.Mask.SetPrefix(FieldIPSrc, 8)
	m.Key.Set(FieldIPSrc, 0x0a000000) // 10.0.0.0
	m.Normalize()

	var k Key
	k.Set(FieldIPSrc, 0x0a636363) // 10.99.99.99
	if !m.Matches(k) {
		t.Error("10.99.99.99 should match 10.0.0.0/8")
	}
	k.Set(FieldIPSrc, 0x0b000000) // 11.0.0.0
	if m.Matches(k) {
		t.Error("11.0.0.0 should not match 10.0.0.0/8")
	}
}

func TestMatchNormalize(t *testing.T) {
	var m Match
	m.Key.Set(FieldIPSrc, 0x0a0a0a0a)
	m.Mask.SetPrefix(FieldIPSrc, 8)
	m.Normalize()
	if got := m.Key.Get(FieldIPSrc); got != 0x0a000000 {
		t.Errorf("normalized key = %#x, want 0x0a000000", got)
	}
}

func TestMatchOverlaps(t *testing.T) {
	mk := func(plen int, ip uint64) Match {
		var m Match
		m.Mask.SetPrefix(FieldIPSrc, plen)
		m.Key.Set(FieldIPSrc, ip)
		m.Normalize()
		return m
	}
	a := mk(8, 0x0a000000)  // 10/8
	b := mk(16, 0x0a010000) // 10.1/16 — inside a
	c := mk(8, 0x0b000000)  // 11/8 — disjoint from a
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("10/8 and 10.1/16 must overlap")
	}
	if a.Overlaps(c) {
		t.Error("10/8 and 11/8 must not overlap")
	}
	var any Match // catch-all overlaps everything
	if !any.Overlaps(a) || !a.Overlaps(any) {
		t.Error("catch-all must overlap 10/8")
	}
}

// Property: Overlaps is symmetric, and a match always overlaps itself.
func TestOverlapsProperties(t *testing.T) {
	prop := func(k1, k2 [Words]uint64, m1, m2 [Words]uint64) bool {
		a := Match{Key: Key(k1), Mask: Mask(m1)}
		b := Match{Key: Key(k2), Mask: Mask(m2)}
		a.Normalize()
		b.Normalize()
		return a.Overlaps(a) && a.Overlaps(b) == b.Overlaps(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: if a key matches two matches, they overlap.
func TestMatchImpliesOverlap(t *testing.T) {
	prop := func(kw, m1w, m2w [Words]uint64) bool {
		k := Key(kw)
		a := Match{Key: Mask(m1w).Apply(k), Mask: Mask(m1w)}
		b := Match{Key: Mask(m2w).Apply(k), Mask: Mask(m2w)}
		// k matches both by construction.
		return a.Matches(k) && b.Matches(k) && a.Overlaps(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMatchStringFig2Style(t *testing.T) {
	var m Match
	m.Key.Set(FieldIPSrc, 0x0a000000)
	m.Mask.SetPrefix(FieldIPSrc, 8)
	m.Normalize()
	if got := m.String(); got != "ip_src=10.0.0.0/8" {
		t.Errorf("String() = %q", got)
	}

	var exact Match
	exact.Key.Set(FieldTPDst, 80)
	exact.Mask.SetExact(FieldTPDst)
	if got := exact.String(); got != "tp_dst=80" {
		t.Errorf("String() = %q", got)
	}

	var all Match
	if got := all.String(); got != "*" {
		t.Errorf("catch-all String() = %q, want *", got)
	}
}

func TestMatchStringMultiField(t *testing.T) {
	var m Match
	m.Key.Set(FieldIPSrc, 0x0a000000)
	m.Mask.SetPrefix(FieldIPSrc, 8)
	m.Key.Set(FieldTPDst, 0x5000)
	m.Mask.SetPrefix(FieldTPDst, 9)
	m.Normalize()
	s := m.String()
	if !strings.Contains(s, "ip_src=10.0.0.0/8") || !strings.Contains(s, "tp_dst=0x5000/9") {
		t.Errorf("String() = %q", s)
	}
}

func TestFiveTupleKeyRoundTrip(t *testing.T) {
	ft := FiveTuple{
		Src:     netip.MustParseAddr("10.1.2.3"),
		Dst:     netip.MustParseAddr("192.168.9.10"),
		Proto:   uint8(ProtoTCP),
		SrcPort: 40000,
		DstPort: 443,
	}
	k := ft.Key(7)
	if got := k.Get(FieldInPort); got != 7 {
		t.Errorf("in_port = %d", got)
	}
	if got := k.Get(FieldEthType); got != EthTypeIPv4 {
		t.Errorf("eth_type = %#x", got)
	}
	back := k.Tuple()
	if back != ft {
		t.Errorf("round trip: got %+v want %+v", back, ft)
	}
}

func TestFiveTupleICMPUsesTypeCode(t *testing.T) {
	ft := FiveTuple{
		Src:     netip.MustParseAddr("10.0.0.1"),
		Dst:     netip.MustParseAddr("10.0.0.2"),
		Proto:   uint8(ProtoICMP),
		SrcPort: 8, // echo request type
		DstPort: 0,
	}
	k := ft.Key(1)
	if got := k.Get(FieldICMPType); got != 8 {
		t.Errorf("icmp_type = %d", got)
	}
	if got := k.Get(FieldTPSrc); got != 0 {
		t.Errorf("tp_src should stay zero for ICMP, got %d", got)
	}
}

func TestFiveTupleIPv6(t *testing.T) {
	ft := FiveTuple{
		Src:     netip.MustParseAddr("2001:db8::1"),
		Dst:     netip.MustParseAddr("2001:db8::2"),
		Proto:   uint8(ProtoUDP),
		SrcPort: 53,
		DstPort: 53,
	}
	k := ft.Key(3)
	if got := k.Get(FieldEthType); got != EthTypeIPv6 {
		t.Errorf("eth_type = %#x", got)
	}
	if got := k.Get(FieldIPv6SrcHi); got != 0x20010db800000000 {
		t.Errorf("ipv6_src_hi = %#x", got)
	}
	if got := k.Get(FieldIPv6SrcLo); got != 1 {
		t.Errorf("ipv6_src_lo = %#x", got)
	}
}

func TestV4Conversions(t *testing.T) {
	a := netip.MustParseAddr("172.16.254.1")
	v := V4(a)
	if v != 0xac10fe01 {
		t.Fatalf("V4 = %#x", v)
	}
	if got := V4Addr(v); got != a {
		t.Fatalf("V4Addr = %v", got)
	}
}

func TestV4PanicsOnV6(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("V4 on an IPv6 address did not panic")
		}
	}()
	V4(netip.MustParseAddr("::1"))
}

func TestExactMaskCoversEverything(t *testing.T) {
	prop := func(kw [Words]uint64) bool {
		k := Key(kw)
		return ExactMask.Apply(k) == k
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	if ExactMask.Bits() != Words*64 {
		t.Errorf("ExactMask.Bits() = %d", ExactMask.Bits())
	}
}

func TestMaskIsZeroAndBits(t *testing.T) {
	var m Mask
	if !m.IsZero() || m.Bits() != 0 {
		t.Error("zero mask misreported")
	}
	m.SetExact(FieldTPDst)
	if m.IsZero() {
		t.Error("non-zero mask reported zero")
	}
	if m.Bits() != 16 {
		t.Errorf("Bits() = %d, want 16", m.Bits())
	}
}

func TestMaskFields(t *testing.T) {
	var m Mask
	m.SetPrefix(FieldIPSrc, 1)
	m.SetExact(FieldTPDst)
	got := m.Fields()
	if len(got) != 2 || got[0] != FieldIPSrc || got[1] != FieldTPDst {
		t.Errorf("Fields() = %v", got)
	}
}

func TestHashKeysMatchesScalarHash(t *testing.T) {
	keys := make([]Key, 5)
	for i := range keys {
		keys[i].Set(FieldIPSrc, uint64(0x0a000001+i))
		keys[i].Set(FieldTPDst, uint64(80+i))
	}
	// Fills a fresh slice, matches per-key Hash, and reuses capacity.
	got := HashKeys(keys, nil)
	for i := range keys {
		if got[i] != keys[i].Hash() {
			t.Fatalf("hash %d diverges from Key.Hash", i)
		}
	}
	reuse := HashKeys(keys[:3], got)
	if &reuse[0] != &got[0] || len(reuse) != 3 {
		t.Error("HashKeys did not reuse the destination buffer")
	}
}
