package flow

import "testing"

// TestStageWordsPartition pins the stage layout invariant the staged
// lookup relies on: every Key word belongs to exactly one stage.
func TestStageWordsPartition(t *testing.T) {
	seen := make(map[int]Stage)
	for s := Stage(0); s < NumStages; s++ {
		for _, w := range s.StageWords() {
			if prev, dup := seen[w]; dup {
				t.Fatalf("word %d in both stage %v and %v", w, prev, s)
			}
			if w < 0 || w >= Words {
				t.Fatalf("stage %v covers out-of-range word %d", s, w)
			}
			seen[w] = s
		}
	}
	if len(seen) != Words {
		t.Fatalf("stages cover %d of %d words", len(seen), Words)
	}
}

// TestStageFieldAssignment spot-checks that the protocol layers land in
// the stages their names promise.
func TestStageFieldAssignment(t *testing.T) {
	cases := []struct {
		field FieldID
		stage Stage
	}{
		{FieldInPort, StageMeta},
		{FieldEthType, StageMeta},
		{FieldVLANTCI, StageMeta},
		{FieldEthSrc, StageL2},
		{FieldIPProto, StageL2},
		{FieldTCPFlags, StageL2},
		{FieldIPSrc, StageL3},
		{FieldIPv6DstLo, StageL3},
		{FieldTPSrc, StageL4},
		{FieldTPDst, StageL4},
		{FieldCTState, StageL4},
	}
	for _, c := range cases {
		var m Mask
		m.SetExact(c.field)
		if !m.StageUsed(c.stage) {
			t.Errorf("%v: expected stage %v used", c.field, c.stage)
		}
		for s := Stage(0); s < NumStages; s++ {
			if s != c.stage && m.StageUsed(s) {
				t.Errorf("%v: unexpected stage %v used", c.field, s)
			}
		}
		if last, ok := m.LastStage(); !ok || last != c.stage {
			t.Errorf("%v: LastStage = %v/%v, want %v/true", c.field, last, ok, c.stage)
		}
	}
}

func TestLastStageZeroMask(t *testing.T) {
	var m Mask
	if _, ok := m.LastStage(); ok {
		t.Fatal("zero mask reported a used stage")
	}
}

// TestHashStageChain pins the contract of the incremental chain: (a) the
// hash after stage s depends only on masked bits of stages <= s, (b) a
// masked key and its raw original hash identically, and (c) keys
// differing inside a masked stage diverge from that stage on.
func TestHashStageChain(t *testing.T) {
	var m Mask
	m.SetExact(FieldInPort)
	m.SetExact(FieldIPSrc)
	m.SetExact(FieldTPDst)

	mk := func(port, ip, dport, sport uint64) Key {
		var k Key
		k.Set(FieldInPort, port)
		k.Set(FieldIPSrc, ip)
		k.Set(FieldTPDst, dport)
		k.Set(FieldTPSrc, sport) // not masked: must never matter
		return k
	}
	chain := func(k Key) [NumStages]uint64 {
		var out [NumStages]uint64
		h := StageHashSeed
		for s := Stage(0); s < NumStages; s++ {
			h = k.HashStage(h, &m, s)
			out[s] = h
		}
		return out
	}

	a := chain(mk(1, 0x0a000001, 80, 1234))
	b := chain(mk(1, 0x0a000001, 80, 9999)) // differs only in unmasked bits
	if a != b {
		t.Fatal("unmasked bits leaked into the stage hash chain")
	}

	raw := mk(1, 0x0a000001, 80, 1234)
	masked := m.Apply(raw)
	if chain(raw) != chain(masked) {
		t.Fatal("masked key hashes differently from its raw original")
	}

	c := chain(mk(1, 0x0a000002, 80, 1234)) // diverges at L3
	if a[StageMeta] != c[StageMeta] || a[StageL2] != c[StageL2] {
		t.Fatal("pre-divergence stages must agree")
	}
	if a[StageL3] == c[StageL3] {
		t.Fatal("L3 divergence not reflected in the stage hash")
	}

	d := chain(mk(2, 0x0a000001, 80, 1234)) // diverges at metadata
	if a[StageMeta] == d[StageMeta] {
		t.Fatal("metadata divergence not reflected in the stage hash")
	}
}
