package flow

import (
	"fmt"
	"sort"
	"strings"
)

// Key is the parsed header of one packet: every matchable field, packed
// into Words 64-bit words per the layout documented on Words. The zero Key
// has every field zero. Key is comparable and usable as a map key.
type Key [Words]uint64

// Mask selects the Key bits a classifier entry matches on. A set bit means
// "this bit of the key is significant". Mask is comparable and usable as a
// map key, which is how the tuple-space search groups entries by mask.
type Mask [Words]uint64

// Match is a masked key: the pair (Key AND Mask, Mask). It is the unit the
// megaflow cache stores and the unit the slow path synthesises per upcall.
type Match struct {
	Key  Key
	Mask Mask
}

// ExactMask matches every bit of every field.
var ExactMask = func() Mask {
	var m Mask
	for i := range m {
		m[i] = ^uint64(0)
	}
	return m
}()

// Apply returns k with every bit not selected by m cleared.
func (m Mask) Apply(k Key) Key {
	var out Key
	for i := range k {
		out[i] = k[i] & m[i]
	}
	return out
}

// Union returns the bitwise OR of m and o: the mask that is at least as
// specific as both.
func (m Mask) Union(o Mask) Mask {
	var out Mask
	for i := range m {
		out[i] = m[i] | o[i]
	}
	return out
}

// Subset reports whether every bit set in m is also set in o.
func (m Mask) Subset(o Mask) bool {
	for i := range m {
		if m[i]&^o[i] != 0 {
			return false
		}
	}
	return true
}

// IsZero reports whether the mask selects no bits (matches everything).
func (m Mask) IsZero() bool {
	for _, w := range m {
		if w != 0 {
			return false
		}
	}
	return true
}

// Bits returns the total number of selected bits.
func (m Mask) Bits() int {
	n := 0
	for _, w := range m {
		n += popcount(w)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// SetPrefix marks the top nbits of field id as significant.
func (m *Mask) SetPrefix(id FieldID, nbits int) {
	f := FieldByID(id)
	m[f.Word] |= f.prefixMask(nbits)
}

// SetExact marks the whole of field id as significant.
func (m *Mask) SetExact(id FieldID) {
	f := FieldByID(id)
	m[f.Word] |= f.valueMask()
}

// PrefixLen returns the number of leading significant bits of field id and
// whether the field mask is an exact prefix (contiguous run of high bits).
func (m Mask) PrefixLen(id FieldID) (int, bool) {
	f := FieldByID(id)
	v := f.GetMask(&m)
	// v is right-aligned in f.Bits bits; a prefix is 1...10...0.
	n := 0
	seenZero := false
	for i := f.Bits - 1; i >= 0; i-- {
		bit := v>>uint(i)&1 == 1
		if bit {
			if seenZero {
				return n, false
			}
			n++
		} else {
			seenZero = true
		}
	}
	return n, true
}

// Fields returns the IDs of all fields with at least one significant bit,
// in registry order.
func (m Mask) Fields() []FieldID {
	var out []FieldID
	for id := FieldID(0); id < NumFields; id++ {
		f := FieldByID(id)
		if m[f.Word]&f.valueMask() != 0 {
			out = append(out, id)
		}
	}
	return out
}

// Hash returns a 64-bit hash of the key words: FNV-1a over the bytes with
// a murmur-style finaliser. It is not cryptographic; it distributes masked
// keys across hash buckets (and flows across RSS queues) the way the OVS
// datapath uses its flow hash. The finaliser matters: plain FNV-1a has
// weak low-bit avalanche on sparse keys differing in single bits — exactly
// the covert stream's shape — which visibly skews modulo-N steering.
func (k Key) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range k {
		for i := 0; i < 8; i++ {
			h ^= w & 0xff
			h *= prime64
			w >>= 8
		}
	}
	// Murmur3 finaliser for avalanche in the low bits.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Hash returns a 64-bit hash of the mask words, used to cheaply index
// per-mask statistics.
func (m Mask) Hash() uint64 { return Key(m).Hash() }

// HashKeys fills dst with the Hash of each key, reusing dst's storage when
// its capacity suffices, and returns it. This is the batch-entry hash pass
// of the vectorized datapath: a burst's flow hashes are computed once —
// at extract/batch-entry time — and then reused by every hash-consuming
// consumer (SMC fingerprinting, EMC victim selection, RSS steering)
// instead of re-hashing the key per probe.
func HashKeys(keys []Key, dst []uint64) []uint64 {
	if cap(dst) < len(keys) {
		dst = make([]uint64, len(keys))
	}
	dst = dst[:len(keys)]
	for i := range keys {
		dst[i] = keys[i].Hash()
	}
	return dst
}

// Get returns the value of field id in k, right-aligned.
func (k Key) Get(id FieldID) uint64 {
	f := FieldByID(id)
	return f.Get(&k)
}

// Set stores the right-aligned value v into field id.
func (k *Key) Set(id FieldID, v uint64) {
	f := FieldByID(id)
	f.Set(k, v)
}

// Matches reports whether key k agrees with match m on every significant bit.
func (m Match) Matches(k Key) bool {
	for i := range k {
		if k[i]&m.Mask[i] != m.Key[i] {
			return false
		}
	}
	return true
}

// Normalize clears key bits not covered by the mask, establishing the
// invariant Key == Mask.Apply(Key).
func (m *Match) Normalize() { m.Key = m.Mask.Apply(m.Key) }

// Overlaps reports whether some key could match both m and o: on every bit
// significant to both, the two keys must agree.
func (m Match) Overlaps(o Match) bool {
	for i := range m.Key {
		both := m.Mask[i] & o.Mask[i]
		if (m.Key[i]^o.Key[i])&both != 0 {
			return false
		}
	}
	return true
}

// String renders the match in ovs-ofctl style: field=value[/mask] pairs
// joined by commas, fields in registry order. An empty (catch-all) match
// renders as "*".
func (m Match) String() string {
	ids := m.Mask.Fields()
	if len(ids) == 0 {
		return "*"
	}
	parts := make([]string, 0, len(ids))
	for _, id := range ids {
		f := FieldByID(id)
		v := f.Get(&m.Key)
		mk := f.GetMask(&m.Mask)
		parts = append(parts, formatField(f, v, mk))
	}
	return strings.Join(parts, ",")
}

func formatField(f Field, v, mk uint64) string {
	exact := mk == (uint64(1)<<uint(f.Bits))-1 || (f.Bits == 64 && mk == ^uint64(0))
	switch f.ID {
	case FieldIPSrc, FieldIPDst:
		ip := fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
		if exact {
			return fmt.Sprintf("%s=%s", f.Name, ip)
		}
		if plen, ok := prefixOf(mk, f.Bits); ok {
			return fmt.Sprintf("%s=%s/%d", f.Name, ip, plen)
		}
		return fmt.Sprintf("%s=%s/%#x", f.Name, ip, mk)
	case FieldEthSrc, FieldEthDst:
		mac := fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
			byte(v>>40), byte(v>>32), byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
		if exact {
			return fmt.Sprintf("%s=%s", f.Name, mac)
		}
		return fmt.Sprintf("%s=%s/%#x", f.Name, mac, mk)
	default:
		if exact {
			return fmt.Sprintf("%s=%d", f.Name, v)
		}
		if plen, ok := prefixOf(mk, f.Bits); ok {
			return fmt.Sprintf("%s=%#x/%d", f.Name, v, plen)
		}
		return fmt.Sprintf("%s=%#x/%#x", f.Name, v, mk)
	}
}

// prefixOf reports whether mk (right-aligned in bits) is a contiguous
// prefix mask and if so its length.
func prefixOf(mk uint64, bits int) (int, bool) {
	n := 0
	seenZero := false
	for i := bits - 1; i >= 0; i-- {
		if mk>>uint(i)&1 == 1 {
			if seenZero {
				return 0, false
			}
			n++
		} else {
			seenZero = true
		}
	}
	return n, true
}

// String renders the key as an exact match over the conventionally
// interesting fields (those that are non-zero), for diagnostics.
func (k Key) String() string {
	m := Match{Key: k, Mask: ExactMask}
	var parts []string
	for _, id := range m.Mask.Fields() {
		f := FieldByID(id)
		if v := f.Get(&k); v != 0 {
			parts = append(parts, formatField(f, v, (uint64(1)<<uint(f.Bits))-1|f64(f.Bits)))
		}
	}
	if len(parts) == 0 {
		return "<zero>"
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func f64(bits int) uint64 {
	if bits == 64 {
		return ^uint64(0)
	}
	return 0
}
